package lint_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	afdx "afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/diag"
	"afdx/internal/lint"
)

// loadCorpus decodes one testdata configuration without validating it
// (the linter reports every defect itself).
func loadCorpus(t *testing.T, name string) *afdx.Network {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := afdx.DecodeJSON(f)
	if err != nil {
		t.Fatalf("decoding %s: %v", name, err)
	}
	return net
}

// uniqueCodes returns the sorted set of distinct codes in a report.
func uniqueCodes(rep *lint.Report) []string {
	set := map[string]bool{}
	for _, d := range rep.Diagnostics {
		set[string(d.Code)] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TestGoldenCorpus pins every analyzer to a configuration constructed
// to trip it — and nothing else. Each file is a golden example of one
// diagnostic code; multi.json checks that independent defects coexist.
func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		file  string
		codes []string // exact set of distinct codes expected
		exit  int      // severity exit code (0 clean/info, 1 warnings, 2 errors)
	}{
		{"clean.json", []string{}, 0},
		{"unstable_port.json", []string{"AFDX001", "AFDX013"}, 2},
		{"routing_loop.json", []string{"AFDX002"}, 2},
		{"no_path.json", []string{"AFDX002"}, 2},
		{"dup_vl.json", []string{"AFDX003"}, 2},
		{"bad_bag.json", []string{"AFDX004"}, 2},
		{"bad_frame.json", []string{"AFDX005"}, 2},
		{"bad_tree.json", []string{"AFDX006"}, 2},
		{"no_grouping.json", []string{"AFDX007"}, 0},
		{"jitter.json", []string{"AFDX008"}, 1},
		{"deadline.json", []string{"AFDX009"}, 1},
		{"orphan.json", []string{"AFDX010"}, 1},
		{"bad_network.json", []string{"AFDX011"}, 2},
		{"bad_attach.json", []string{"AFDX012"}, 2},
		{"overbudget.json", []string{"AFDX013"}, 1},
		{"multi.json", []string{"AFDX003", "AFDX004", "AFDX010"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			net := loadCorpus(t, tc.file)
			rep := lint.Run(net, lint.DefaultOptions())
			got := uniqueCodes(rep)
			if len(got) != len(tc.codes) {
				t.Fatalf("codes = %v, want %v\nreport:\n%s", got, tc.codes, renderText(t, rep))
			}
			for i := range got {
				if got[i] != tc.codes[i] {
					t.Fatalf("codes = %v, want %v\nreport:\n%s", got, tc.codes, renderText(t, rep))
				}
			}
			if rep.ExitCode() != tc.exit {
				t.Errorf("exit code = %d, want %d", rep.ExitCode(), tc.exit)
			}
		})
	}
}

func renderText(t *testing.T, rep *lint.Report) string {
	t.Helper()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCorpusRoutingLoopPreciseCycle checks the cycle report names the
// three ports on the loop and none of the ports merely downstream.
func TestCorpusRoutingLoopPreciseCycle(t *testing.T) {
	rep := lint.Run(loadCorpus(t, "routing_loop.json"), lint.DefaultOptions())
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(rep.Diagnostics), renderText(t, rep))
	}
	msg := rep.Diagnostics[0].Message
	for _, want := range []string{"3 ports", "S1->S2", "S2->S3", "S3->S1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("cycle message %q missing %q", msg, want)
		}
	}
	for _, stray := range []string{"f1", "f2", "f3"} {
		if strings.Contains(msg, stray) {
			t.Errorf("cycle message %q names downstream-only port %s", msg, stray)
		}
	}
}

// TestCorpusSkipsPortAnalyzers checks that configurations whose port
// graph cannot be derived still lint (structural analyzers run) and
// honestly report which analyzers were skipped.
func TestCorpusSkipsPortAnalyzers(t *testing.T) {
	rep := lint.Run(loadCorpus(t, "routing_loop.json"), lint.DefaultOptions())
	if len(rep.Skipped) == 0 {
		t.Fatal("expected port-graph analyzers to be skipped on a cyclic configuration")
	}
	for _, name := range rep.Skipped {
		a := analyzerByName(name)
		if a == nil {
			t.Fatalf("skipped list names unregistered analyzer %q", name)
		}
		if !a.NeedsPorts {
			t.Errorf("analyzer %q skipped but does not need the port graph", name)
		}
	}
}

func analyzerByName(name string) *lint.Analyzer {
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TestFigure2Clean pins the acceptance criterion: the paper's sample
// configuration lints completely clean.
func TestFigure2Clean(t *testing.T) {
	rep := lint.Run(afdx.Figure2Config(), lint.DefaultOptions())
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("Figure 2 configuration is not clean:\n%s", renderText(t, rep))
	}
	if rep.ExitCode() != 0 {
		t.Errorf("exit code = %d, want 0", rep.ExitCode())
	}
}

// TestIndustrialSeed1NoErrors pins the other acceptance criterion: the
// synthetic industrial configuration (seed 1) has no lint errors. (It
// carries AFDX008 jitter warnings — the generator packs end systems as
// densely as the published statistics demand.)
func TestIndustrialSeed1NoErrors(t *testing.T) {
	net, err := configgen.Generate(configgen.DefaultSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Run(net, lint.DefaultOptions())
	if rep.HasErrors() {
		t.Fatalf("industrial seed 1 has lint errors:\n%s", renderText(t, rep))
	}
	for _, d := range rep.Diagnostics {
		if d.Severity == diag.Warning && d.Code != diag.CodeESJitter {
			t.Errorf("unexpected warning: %s", d)
		}
	}
}
