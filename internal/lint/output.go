package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"afdx/internal/diag"
)

// WriteText renders the report for humans: one line per diagnostic
// (code, severity, location, message), an indented fix suggestion, and
// a closing summary line.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
		if d.Suggestion != "" {
			if _, err := fmt.Fprintf(w, "        fix: %s\n", d.Suggestion); err != nil {
				return err
			}
		}
	}
	summary := fmt.Sprintf("%s: %d error(s), %d warning(s), %d info", r.Network, r.Errors, r.Warnings, r.Infos)
	if len(r.Skipped) > 0 {
		summary += fmt.Sprintf(" [%s skipped: port graph not derivable]", strings.Join(r.Skipped, ", "))
	}
	_, err := fmt.Fprintln(w, summary)
	return err
}

// WriteJSON renders the report as one indented JSON document. A clean
// report carries an empty diagnostics array, not null, so consumers can
// iterate unconditionally.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	if out.Diagnostics == nil {
		out.Diagnostics = []diag.Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// SARIF 2.1.0 skeleton, the subset static-analysis viewers consume:
// one run, one rule per registered analyzer, one result per diagnostic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	Name             string            `json:"name"`
	ShortDescription sarifMessage      `json:"shortDescription"`
	FullDescription  sarifMessage      `json:"fullDescription"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical  `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogicalL `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifLogicalL struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
}

func sarifLevel(s diag.Severity) string {
	switch s {
	case diag.Error:
		return "error"
	case diag.Warning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders the report in SARIF 2.1.0 so CI systems and code
// scanners can ingest it. artifactURI names the configuration file the
// report describes (empty is allowed: locations then carry only the
// logical network coordinates).
func (r *Report) WriteSARIF(w io.Writer, artifactURI string) error {
	driver := sarifDriver{Name: "afdx-lint"}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               string(a.Code),
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Name},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range r.Diagnostics {
		res := sarifResult{
			RuleID:  string(d.Code),
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: d.Message},
		}
		var loc sarifLocation
		if artifactURI != "" {
			loc.PhysicalLocation = &sarifPhysical{ArtifactLocation: sarifArtifact{URI: artifactURI}}
		}
		if !d.Loc.IsZero() {
			loc.LogicalLocations = []sarifLogicalL{{FullyQualifiedName: d.Loc.String()}}
		}
		if loc.PhysicalLocation != nil || loc.LogicalLocations != nil {
			res.Locations = []sarifLocation{loc}
		}
		run.Results = append(run.Results, res)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
