package obs

import "context"

// The registry, tracer, and current span ride the context so that
// instrumentation reaches every engine through the existing call
// graph — no analysis type grows an observability field, keeping the
// observation layer removable and the engines' public surface stable.

type ctxKey int

const (
	registryKey ctxKey = iota
	tracerKey
	spanKey
)

// WithRegistry returns a context carrying the metrics registry.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the registry carried by ctx, or nil. A nil
// result is usable: it hands out nil instruments that no-op.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithTracer returns a context carrying the span tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan opens a span named name under the context's current span
// and returns a derived context in which it is current. Without a
// tracer in ctx it returns (ctx, nil) — and a nil *Span's End no-ops —
// so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	sp := t.start(parent, name)
	return context.WithValue(ctx, spanKey, sp), sp
}
