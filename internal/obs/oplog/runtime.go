package oplog

import (
	"runtime"
	"sync"
	"time"

	"afdx/internal/obs"
)

// RuntimeSampler periodically copies Go runtime health figures —
// goroutine count, heap footprint, GC activity — into gauges on a
// registry, plus any caller-registered gauges (the serve layer adds
// session-pool occupancy). Every gauge it registers is obs.BestEffort
// class: samples observe scheduling and allocator state, never work,
// so the Deterministic snapshot is identical whether the sampler runs
// or not (DET005 rejects any Deterministic-class registration in this
// package). A nil *RuntimeSampler no-ops.
type RuntimeSampler struct {
	reg        *obs.Registry
	goroutines *obs.Gauge
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	gcCycles   *obs.Gauge
	gcPauseNs  *obs.Gauge

	mu    sync.Mutex
	extra []extraGauge
}

type extraGauge struct {
	g  *obs.Gauge
	fn func() int64
}

// NewRuntimeSampler registers the runtime gauges on reg and returns a
// sampler that fills them on each Sample call; a nil registry returns
// a nil sampler.
func NewRuntimeSampler(reg *obs.Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		reg:        reg,
		goroutines: reg.Gauge("runtime.goroutines", obs.BestEffort, "live goroutines at last sample"),
		heapAlloc:  reg.Gauge("runtime.heap_alloc_bytes", obs.BestEffort, "bytes of allocated heap objects at last sample"),
		heapSys:    reg.Gauge("runtime.heap_sys_bytes", obs.BestEffort, "bytes of heap obtained from the OS at last sample"),
		gcCycles:   reg.Gauge("runtime.gc_cycles", obs.BestEffort, "completed GC cycles at last sample"),
		gcPauseNs:  reg.Gauge("runtime.gc_pause_total_ns", obs.BestEffort, "cumulative GC stop-the-world pause at last sample"),
	}
}

// AddGauge registers a caller-supplied BestEffort gauge filled from
// fn on each sample (e.g. serve session-pool occupancy).
func (s *RuntimeSampler) AddGauge(name, help string, fn func() int64) {
	if s == nil || fn == nil {
		return
	}
	g := s.reg.Gauge(name, obs.BestEffort, help)
	s.mu.Lock()
	s.extra = append(s.extra, extraGauge{g: g, fn: fn})
	s.mu.Unlock()
}

// Sample takes one snapshot of the runtime figures into the gauges.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapSys.Set(int64(ms.HeapSys))
	s.gcCycles.Set(int64(ms.NumGC))
	s.gcPauseNs.Set(int64(ms.PauseTotalNs))
	s.mu.Lock()
	extra := append([]extraGauge(nil), s.extra...)
	s.mu.Unlock()
	for _, e := range extra {
		e.g.Set(e.fn())
	}
}

// Start samples immediately and then every interval until the
// returned stop function is called; stop waits for the sampling
// goroutine to exit and is safe to call more than once.
func (s *RuntimeSampler) Start(interval time.Duration) (stop func()) {
	if s == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s.Sample()
	stopCh, doneCh := make(chan struct{}), make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
}
