package oplog

import (
	"sync"

	"afdx/internal/obs"
)

// RequestTrace is one completed HTTP request retained for after-the-
// fact inspection: the correlation id minted by the serve layer, the
// request line, outcome, latency, and the engine spans the request
// produced (already in Chrome-trace event form, the repository's
// canonical trace encoding).
type RequestTrace struct {
	ID      string           `json:"id"`
	Method  string           `json:"method"`
	Path    string           `json:"path"`
	Session string           `json:"session,omitempty"`
	Status  int              `json:"status"`
	DurUs   int64            `json:"durUs"`
	Events  []obs.TraceEvent `json:"events,omitempty"`
}

// TraceSummary is the listing form of a retained trace: everything
// but the event payload, plus the event count.
type TraceSummary struct {
	ID      string `json:"id"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Session string `json:"session,omitempty"`
	Status  int    `json:"status"`
	DurUs   int64  `json:"durUs"`
	Events  int    `json:"events"`
}

// Ring retains the most recent completed request traces in a fixed-
// capacity circular buffer. Adding the capacity+1'th trace evicts the
// oldest; lookups by id only resolve while the trace is retained.
// All methods are safe for concurrent use, and a nil *Ring no-ops, so
// the serve layer threads it unconditionally.
type Ring struct {
	mu   sync.Mutex
	buf  []RequestTrace
	next int // next slot to write
	n    int // slots filled, ≤ len(buf)
	byID map[string]int
}

// NewRing returns a ring retaining up to capacity traces; capacity
// ≤ 0 returns nil (retention off).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]RequestTrace, capacity), byID: make(map[string]int)}
}

// Add retains tr, evicting the oldest trace when full.
func (r *Ring) Add(tr RequestTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; r.n == len(r.buf) && r.byID[old.ID] == r.next {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = tr
	r.byID[tr.ID] = r.next
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Get returns the retained trace with the given id.
func (r *Ring) Get(id string) (RequestTrace, bool) {
	if r == nil {
		return RequestTrace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byID[id]
	if !ok {
		return RequestTrace{}, false
	}
	return r.buf[i], true
}

// List returns summaries of the retained traces, newest first.
func (r *Ring) List() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, r.n)
	for k := 1; k <= r.n; k++ {
		i := (r.next - k + len(r.buf)) % len(r.buf)
		tr := r.buf[i]
		out = append(out, TraceSummary{
			ID:      tr.ID,
			Method:  tr.Method,
			Path:    tr.Path,
			Session: tr.Session,
			Status:  tr.Status,
			DurUs:   tr.DurUs,
			Events:  len(tr.Events),
		})
	}
	return out
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
