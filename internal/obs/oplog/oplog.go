// Package oplog is the operational observability layer built on
// internal/obs: structured request logging (log/slog), bounded
// retention of completed request traces, Prometheus text exposition of
// a Registry snapshot, and a best-effort Go-runtime sampler.
//
// Like obs, oplog is strictly observation-only. Nothing in this
// package feeds back into analysis: loggers write to stderr or files
// (never stdout — every afdx CLI owns its stdout for machine-readable
// output), traces are retained copies of completed work, and every
// metric the runtime sampler registers is obs.BestEffort class so the
// Deterministic snapshot — the one the determinism tests DeepEqual —
// is unchanged whether sampling runs or not. detcheck's DET005 rule
// enforces the class discipline statically.
package oplog

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
)

// Version identifies the observability-layer schema: the request-log
// field set, the RequestTrace shape, and the provenance record layout.
// It is stamped into provenance records so a retained bound can be
// decoded years later against the right schema.
const Version = "oplog/1"

// Sink resolves a log destination string to a writer:
//
//	""        → nil writer, logging off
//	"stderr"  → os.Stderr (Close is a no-op)
//	path      → the file at path, created or truncated
//
// "stdout" and "-" are refused: the afdx CLIs reserve stdout for
// machine-readable output (selfcheck JSON reports, the afdx-serve
// readiness line), so operational logs may never interleave there.
func Sink(dest string) (io.WriteCloser, error) {
	switch dest {
	case "":
		return nil, nil
	case "stderr":
		return nopCloser{os.Stderr}, nil
	case "stdout", "-":
		return nil, fmt.Errorf("oplog: stdout is reserved for machine-readable output; log to stderr or a file")
	default:
		f, err := os.Create(dest)
		if err != nil {
			return nil, fmt.Errorf("oplog: open log sink: %w", err)
		}
		return f, nil
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// New builds a logger writing structured records to w: JSON handler
// when jsonFormat is set, the human-oriented text handler otherwise.
// A nil writer yields the discard logger, so callers can thread the
// result unconditionally.
func New(w io.Writer, jsonFormat bool) *slog.Logger {
	if w == nil {
		return Discard()
	}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// Discard returns a logger that drops every record without
// formatting it. Handlers receive no calls past Enabled, so a
// discarded log line costs one interface call.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// FNV64 returns the FNV-1a 64-bit digest of data, hex-encoded. Used
// for provenance config digests: stable across runs and platforms,
// cheap enough to compute per analysis, and collision-resistant
// enough to distinguish network configurations in an audit trail.
func FNV64(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}
