package oplog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"afdx/internal/obs"
)

func TestSink(t *testing.T) {
	if w, err := Sink(""); err != nil || w != nil {
		t.Fatalf("Sink(\"\") = %v, %v; want nil, nil", w, err)
	}
	w, err := Sink("stderr")
	if err != nil || w == nil {
		t.Fatalf("Sink(stderr) = %v, %v", w, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("stderr sink Close: %v", err)
	}
	for _, dest := range []string{"stdout", "-"} {
		if _, err := Sink(dest); err == nil {
			t.Fatalf("Sink(%q) accepted; stdout must be refused", dest)
		}
	}
	path := filepath.Join(t.TempDir(), "op.log")
	w, err = Sink(path)
	if err != nil {
		t.Fatalf("Sink(file): %v", err)
	}
	fmt.Fprintln(w, "line")
	if err := w.Close(); err != nil {
		t.Fatalf("file sink Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "line\n" {
		t.Fatalf("file sink content = %q, %v", data, err)
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, true)
	log.Info("request", "id", "r1", "status", 200, "dur_us", int64(1234))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"time", "level", "msg", "id", "status", "dur_us"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("log line missing %q: %s", key, buf.String())
		}
	}
	if rec["msg"] != "request" || rec["id"] != "r1" {
		t.Errorf("unexpected record: %v", rec)
	}
}

func TestLoggerNilAndDiscard(t *testing.T) {
	for _, log := range []interface {
		Info(string, ...any)
	}{New(nil, true), Discard()} {
		log.Info("dropped", "k", "v") // must not panic or write anywhere
	}
}

func TestFNV64(t *testing.T) {
	// Reference values of FNV-1a 64-bit.
	if got := FNV64(nil); got != "cbf29ce484222325" {
		t.Errorf("FNV64(nil) = %s", got)
	}
	if got := FNV64([]byte("a")); got != "af63dc4c8601ec8c" {
		t.Errorf("FNV64(a) = %s", got)
	}
	if FNV64([]byte("config-a")) == FNV64([]byte("config-b")) {
		t.Error("distinct inputs collided")
	}
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(RequestTrace{ID: fmt.Sprintf("r%d", i), Status: 200, DurUs: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	for _, id := range []string{"r1", "r2"} {
		if _, ok := r.Get(id); ok {
			t.Errorf("%s still retained after eviction", id)
		}
	}
	for _, id := range []string{"r3", "r4", "r5"} {
		if tr, ok := r.Get(id); !ok || tr.ID != id {
			t.Errorf("Get(%s) = %v, %v", id, tr, ok)
		}
	}
	list := r.List()
	if len(list) != 3 || list[0].ID != "r5" || list[1].ID != "r4" || list[2].ID != "r3" {
		t.Errorf("List order = %v, want newest first r5,r4,r3", list)
	}
}

func TestRingNilAndZero(t *testing.T) {
	var r *Ring
	r.Add(RequestTrace{ID: "x"})
	if _, ok := r.Get("x"); ok {
		t.Error("nil ring retained a trace")
	}
	if r.List() != nil || r.Len() != 0 {
		t.Error("nil ring not empty")
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Error("NewRing with capacity <= 0 should be nil")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				r.Add(RequestTrace{ID: id, Events: []obs.TraceEvent{{Name: id, Ph: "X"}}})
				r.Get(id)
				r.List()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8", r.Len())
	}
	for _, s := range r.List() {
		if tr, ok := r.Get(s.ID); !ok || tr.ID != s.ID {
			t.Errorf("listed trace %s not retrievable", s.ID)
		}
	}
}

var promSeries = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+)$`)

// TestWritePrometheus builds a mixed registry and validates the
// exposition against the text-format grammar: TYPE headers, legal
// series names, cumulative monotone buckets ending at le="+Inf" ==
// _count.
func TestWritePrometheus(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("netcalc.port_visits", obs.Deterministic, "ports visited").Add(7)
	reg.Gauge("runtime.goroutines", obs.BestEffort, "live goroutines").Set(12)
	h := reg.Histogram("serve.request_duration_us", obs.BestEffort, "request latency")
	for _, v := range []int64{0, 1, 3, 9, 1000, 1 << 40} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	types := map[string]string{}
	cum := map[string]int64{} // metric → last cumulative bucket value
	inf := map[string]int64{}
	count := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		m := promSeries.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed series line: %q", line)
		}
		name, labels := m[1], m[2]
		v, _ := strconv.ParseInt(m[3], 10, 64)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			if strings.Contains(labels, `le="+Inf"`) {
				inf[base] = v
			} else if v < cum[base] {
				t.Errorf("bucket series for %s not monotone: %q", base, line)
			} else {
				cum[base] = v
			}
		case strings.HasSuffix(name, "_count"):
			count[strings.TrimSuffix(name, "_count")] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"netcalc_port_visits":       "counter",
		"runtime_goroutines":        "gauge",
		"serve_request_duration_us": "histogram",
	}
	for name, typ := range want {
		if types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}
	if !strings.Contains(text, `netcalc_port_visits{class="deterministic"} 7`) {
		t.Errorf("counter series missing:\n%s", text)
	}
	if !strings.Contains(text, `runtime_goroutines{class="best-effort"} 12`) {
		t.Errorf("gauge series missing:\n%s", text)
	}
	base := "serve_request_duration_us"
	if inf[base] != 6 || count[base] != 6 {
		t.Errorf("le=+Inf = %d, _count = %d, want 6 observations", inf[base], count[base])
	}
	if cum[base] > inf[base] {
		t.Errorf("finite buckets (%d) exceed +Inf (%d)", cum[base], inf[base])
	}
}

func TestWritePrometheusNil(t *testing.T) {
	if err := WritePrometheus(&bytes.Buffer{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"netcalc.port_visits": "netcalc_port_visits",
		"serve.http/requests": "serve_http_requests",
		"9lives":              "_lives",
		"a9":                  "a9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewRuntimeSampler(reg)
	var occupancy int64 = 3
	s.AddGauge("serve.sessions_live", "sessions held by the pool", func() int64 { return occupancy })
	s.Sample()
	snap := reg.Snapshot()
	if g := snap.Gauge("runtime.goroutines"); g < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauge("runtime.heap_alloc_bytes"); g <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %d, want > 0", g)
	}
	if g := snap.Gauge("serve.sessions_live"); g != 3 {
		t.Errorf("serve.sessions_live = %d, want 3", g)
	}
	// Every gauge the sampler registers must be BestEffort: the
	// Deterministic snapshot is identical with and without sampling.
	for _, g := range snap.Gauges {
		if g.Class != obs.BestEffort.String() {
			t.Errorf("sampler gauge %s has class %s", g.Name, g.Class)
		}
	}
	if det := snap.Deterministic(); len(det.Gauges) != 0 {
		t.Errorf("sampler leaked into Deterministic snapshot: %v", det.Gauges)
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	s := NewRuntimeSampler(obs.NewRegistry())
	stop := s.Start(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	var nilS *RuntimeSampler
	nilS.Sample()
	nilS.AddGauge("x", "", func() int64 { return 0 })
	nilS.Start(time.Millisecond)()
}
