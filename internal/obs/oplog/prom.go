package oplog

import (
	"fmt"
	"io"
	"strings"

	"afdx/internal/obs"
)

// PrometheusContentType is the content type of the text exposition
// format version 0.0.4, the format WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format. Counters and gauges map directly; the power-of-
// two histograms map to cumulative `_bucket{le="..."}` series with
// the exclusive bucket counts accumulated in order and the unbounded
// bucket folded into le="+Inf", plus `_sum` and `_count`. Metric
// names are sanitized (dots → underscores) and every series carries a
// class label ("deterministic" or "best-effort") so dashboards can
// separate the reproducible work counters from scheduling
// observations. Output order follows the snapshot, which is sorted by
// name, so scrapes of an idle process are byte-stable.
func WritePrometheus(w io.Writer, snap *obs.Snapshot) error {
	if snap == nil {
		return nil
	}
	for _, c := range snap.Counters {
		name := promName(c.Name)
		if err := promHeader(w, name, "counter", c.Help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s{class=%q} %d\n", name, c.Class, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		name := promName(g.Name)
		if err := promHeader(w, name, "gauge", g.Help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s{class=%q} %d\n", name, g.Class, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		name := promName(h.Name)
		if err := promHeader(w, name, "histogram", h.Help); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			if b.Le < 0 {
				// Unbounded overflow bucket: folded into +Inf below.
				continue
			}
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{class=%q,le=\"%d\"} %d\n", name, h.Class, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{class=%q,le=\"+Inf\"} %d\n", name, h.Class, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{class=%q} %d\n", name, h.Class, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{class=%q} %d\n", name, h.Class, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func promHeader(w io.Writer, name, typ, help string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// promName maps a registry metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted namespaces
// ("netcalc.port_visits") become underscores.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promEscapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}
