// Package obs is the zero-dependency observability layer: lock-cheap
// engine metrics (atomic counters and power-of-two histograms gathered
// in a Registry and snapshotted deterministically) and hierarchical
// span tracing (campaign → config → engine → path/port) emitted as a
// Chrome-trace-viewer JSON event log or a human text tree.
//
// Observation is strictly read-only with respect to the analysis: no
// engine decision may depend on a metric or span, so instrumented and
// uninstrumented runs compute bit-identical results (pinned by
// determinism tests at the repository root). Everything is nil-safe —
// a nil *Registry hands out nil *Counter/*Histogram whose methods
// no-op, so disabled observability costs a pointer test per event.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Class states a metric's reproducibility contract.
type Class int

const (
	// Deterministic metrics count work units. Because the parallel
	// engines execute the same work set in every schedule (PR 2's
	// bit-reproducibility contract) and integer addition commutes,
	// a Deterministic metric's snapshot value is identical across
	// runs and across -parallel worker counts.
	Deterministic Class = iota
	// BestEffort metrics observe scheduling (pool occupancy, racy
	// cache contention): their values are meaningful but may differ
	// between runs. Determinism tests must ignore them.
	BestEffort
)

func (c Class) String() string {
	if c == Deterministic {
		return "deterministic"
	}
	return "best-effort"
}

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil *Counter no-ops.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous level (heap bytes, live sessions, pool
// occupancy). Unlike a Counter it moves both ways; most gauges observe
// the runtime or scheduling and are therefore BestEffort class. The
// zero value is ready to use; a nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level (no-op on a nil receiver).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by n (no-op on a nil receiver).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets:
// bucket 0 holds the value 0, bucket b holds [2^(b-1), 2^b-1], and
// the last bucket absorbs everything above.
const histBuckets = 18

// Histogram is an atomic power-of-two histogram over non-negative
// integer observations (iteration counts, rank sizes, occupancy).
// A nil *Histogram no-ops.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLe returns bucket b's inclusive upper value bound, or -1 for
// the unbounded overflow bucket. Exposition formats (Prometheus
// cumulative buckets) and quantile estimation both key off it.
func bucketLe(b int) int64 {
	switch {
	case b == 0:
		return 0
	case b == histBuckets-1:
		return -1
	default:
		return int64(1)<<b - 1
	}
}

// bucketRange renders bucket b's value range for reports.
func bucketRange(b int) string {
	switch {
	case b == 0:
		return "0"
	case b == 1:
		return "1"
	case b == histBuckets-1:
		return fmt.Sprintf(">=%d", int64(1)<<(b-1))
	default:
		return fmt.Sprintf("%d-%d", int64(1)<<(b-1), int64(1)<<b-1)
	}
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Registry is a named collection of counters and histograms. Metrics
// are registered get-or-create, so independent subsystems sharing a
// name accumulate into the same instrument. A nil *Registry hands out
// nil instruments; all methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterEntry
	hists    map[string]*histEntry
	gauges   map[string]*gaugeEntry
}

type counterEntry struct {
	c     *Counter
	class Class
	help  string
}

type histEntry struct {
	h     *Histogram
	class Class
	help  string
}

type gaugeEntry struct {
	g     *Gauge
	class Class
	help  string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*counterEntry{},
		hists:    map[string]*histEntry{},
		gauges:   map[string]*gaugeEntry{},
	}
}

// Counter returns the counter registered under name, creating it with
// the given class and help text on first use. Returns nil on a nil
// registry.
func (r *Registry) Counter(name string, class Class, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.counters[name]; ok {
		return e.c
	}
	e := &counterEntry{c: &Counter{}, class: class, help: help}
	r.counters[name] = e
	return e.c
}

// Histogram returns the histogram registered under name, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, class Class, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.hists[name]; ok {
		return e.h
	}
	e := &histEntry{h: &Histogram{}, class: class, help: help}
	r.hists[name] = e
	return e.h
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, class Class, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.gauges[name]; ok {
		return e.g
	}
	e := &gaugeEntry{g: &Gauge{}, class: class, help: help}
	r.gauges[name] = e
	return e.g
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	Value int64  `json:"value"`
	Help  string `json:"help,omitempty"`
}

// BucketValue is one non-empty histogram bucket in a snapshot. Le is
// the bucket's inclusive upper value bound (-1 for the unbounded
// overflow bucket) — the cumulative-bucket boundary Prometheus
// exposition and Quantile work from.
type BucketValue struct {
	Range string `json:"range"`
	Le    int64  `json:"le"`
	Count int64  `json:"count"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	Value int64  `json:"value"`
	Help  string `json:"help,omitempty"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Class   string        `json:"class"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketValue `json:"buckets,omitempty"`
	Help    string        `json:"help,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted
// by name so two snapshots of equal state render identically.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry deterministically (sorted by name).
// A nil registry snapshots to an empty, non-nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: []CounterValue{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.counters {
		s.Counters = append(s.Counters, CounterValue{
			Name:  name,
			Class: e.class.String(),
			Value: e.c.Value(),
			Help:  e.help,
		})
	}
	for name, e := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{
			Name:  name,
			Class: e.class.String(),
			Value: e.g.Value(),
			Help:  e.help,
		})
	}
	for name, e := range r.hists {
		hv := e.h.value()
		hv.Name, hv.Class, hv.Help = name, e.class.String(), e.help
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// value captures the histogram's current counts as an unnamed
// HistogramValue (the caller fills in name/class/help).
func (h *Histogram) value() HistogramValue {
	hv := HistogramValue{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			hv.Buckets = append(hv.Buckets, BucketValue{Range: bucketRange(b), Le: bucketLe(b), Count: n})
		}
	}
	return hv
}

// Quantile returns an upper bound of the q-quantile of the live
// histogram (see HistogramValue.Quantile). 0 on a nil receiver or an
// empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.value().Quantile(q)
}

// Quantile estimates the q-quantile (q in [0,1], clamped) of the
// recorded observations from the power-of-two buckets: it locates the
// bucket holding the nearest-rank sample and returns that bucket's
// inclusive upper bound, capped at the observed maximum. The result is
// therefore always >= the exact quantile value and within its
// power-of-two bucket (a factor-2 envelope), which is the precision the
// histograms trade for being atomic and allocation-free. 0 when the
// histogram is empty.
func (h HistogramValue) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.Le < 0 || b.Le > h.Max {
				// The nearest-rank sample sits in a bucket whose bound
				// exceeds the observed maximum (or is unbounded): the
				// maximum itself is the tightest sound answer.
				return h.Max
			}
			return b.Le
		}
	}
	return h.Max
}

// Counter returns the snapshotted value of the named counter (0 when
// absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of the named gauge (0 when
// absent).
func (s *Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Quantile returns an upper bound of the q-quantile of the named
// histogram (see HistogramValue.Quantile); the second result reports
// whether the histogram exists in the snapshot.
func (s *Snapshot) Quantile(name string, q float64) (int64, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Quantile(q), true
		}
	}
	return 0, false
}

// Deterministic returns the snapshot restricted to Deterministic-class
// metrics — the subset that must be identical across runs and worker
// counts. Determinism tests compare exactly this.
func (s *Snapshot) Deterministic() *Snapshot {
	out := &Snapshot{Counters: []CounterValue{}}
	det := Deterministic.String()
	for _, c := range s.Counters {
		if c.Class == det {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if g.Class == det {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if h.Class == det {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
