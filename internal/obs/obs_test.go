package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"afdx/internal/obs"
	"afdx/internal/parallel"
)

// TestNilSafety pins the disabled-observability contract: a nil
// registry, counter, histogram, tracer, and span all no-op.
func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x", obs.Deterministic, "")
	if c != nil {
		t.Fatal("nil registry handed out a non-nil counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	h := r.Histogram("y", obs.BestEffort, "")
	h.Observe(3)
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot = %+v, want empty", s)
	}
	var tr *obs.Tracer
	ctx, span := obs.StartSpan(context.Background(), "root")
	span.End() // nil span from a tracerless context
	if obs.TracerFrom(ctx) != nil || tr.Records() != nil {
		t.Error("tracerless context leaked a tracer")
	}
}

// TestSnapshotDeterminismUnderPool drives the same counter workload
// through the parallel pool at several worker counts (and, under
// -race, many goroutines at once) and checks the Deterministic subset
// of the snapshots is identical — the contract the repository's
// determinism tests rely on.
func TestSnapshotDeterminismUnderPool(t *testing.T) {
	const tasks = 512
	run := func(workers int) *obs.Snapshot {
		reg := obs.NewRegistry()
		ctx := obs.WithRegistry(context.Background(), reg)
		work := reg.Counter("test.work_units", obs.Deterministic, "one per task")
		iters := reg.Histogram("test.iterations", obs.Deterministic, "per-task loop trips")
		if err := parallel.ForEachCtx(ctx, workers, tasks, func(i int) error {
			work.Inc()
			iters.Observe(int64(i % 7))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	base := run(1).Deterministic()
	if base.Counter("test.work_units") != tasks {
		t.Fatalf("work_units = %d, want %d", base.Counter("test.work_units"), tasks)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers).Deterministic()
		if !reflect.DeepEqual(base, got) {
			t.Errorf("Deterministic snapshot differs at %d workers:\nseq: %+v\ngot: %+v",
				workers, base, got)
		}
	}
}

// TestSnapshotSorted checks snapshots render instruments sorted by
// name regardless of registration order, so equal state always
// serializes identically.
func TestSnapshotSorted(t *testing.T) {
	reg := obs.NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		reg.Counter(name, obs.Deterministic, "").Inc()
	}
	s := reg.Snapshot()
	want := []string{"a.first", "m.middle", "z.last"}
	for i, c := range s.Counters {
		if c.Name != want[i] {
			t.Fatalf("snapshot order %v, want %v", s.Counters, want)
		}
	}
}

// TestRegistryGetOrCreate checks that two registrations under one name
// share the instrument (subsystems accumulate together) and that the
// same name can be read back through the snapshot helper.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("shared", obs.Deterministic, "first")
	b := reg.Counter("shared", obs.Deterministic, "second registration ignored")
	if a != b {
		t.Fatal("two registrations under one name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := reg.Snapshot().Counter("shared"); got != 3 {
		t.Errorf("shared counter = %d, want 3", got)
	}
}

// TestSpanShapeSeqVsParallel runs the same span-producing workload
// sequentially and through the pool and checks Shape() — the multiset
// of completed span label paths — is equal: span sets depend on the
// work performed, never on scheduling.
func TestSpanShapeSeqVsParallel(t *testing.T) {
	const configs = 40
	shape := func(workers int) []string {
		tr := obs.NewTracer()
		ctx := obs.WithTracer(context.Background(), tr)
		ctx, root := obs.StartSpan(ctx, "campaign")
		if err := parallel.ForEachCtx(ctx, workers, configs, func(i int) error {
			cctx, cfg := obs.StartSpan(ctx, fmt.Sprintf("config:%d", i))
			for _, engine := range []string{"netcalc", "trajectory"} {
				_, sp := obs.StartSpan(cctx, engine)
				sp.End()
			}
			cfg.End()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		root.End()
		return tr.Shape()
	}
	seq := shape(1)
	if want := 1 + configs*3; len(seq) != want {
		t.Fatalf("sequential shape has %d spans, want %d", len(seq), want)
	}
	par := shape(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("span shapes differ:\nseq: %v\npar: %v", seq, par)
	}
}

// TestSpanHierarchy checks span paths nest through the context: a
// child span started from a span-carrying context extends the parent's
// label path.
func TestSpanHierarchy(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx, root := obs.StartSpan(ctx, "campaign")
	cctx, cfg := obs.StartSpan(ctx, "config:0")
	_, eng := obs.StartSpan(cctx, "netcalc")
	eng.End()
	cfg.End()
	root.End()
	want := []string{"campaign", "campaign/config:0", "campaign/config:0/netcalc"}
	if got := tr.Shape(); !reflect.DeepEqual(got, want) {
		t.Errorf("shape = %v, want %v", got, want)
	}
	for _, r := range tr.Records() {
		if r.Path == "campaign/config:0/netcalc" && r.CatPath != "campaign/config/netcalc" {
			t.Errorf("catPath = %q, want instance suffix stripped", r.CatPath)
		}
	}
}

// TestDoubleEndIsIdempotent checks a span ended twice records once.
func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	_, sp := obs.StartSpan(ctx, "once")
	sp.End()
	sp.End()
	if n := len(tr.Records()); n != 1 {
		t.Errorf("double End recorded %d spans, want 1", n)
	}
}

// goldenEvents is a fixed trace (no wall-clock anywhere) whose
// canonical encoding is pinned by testdata/chrome_trace.golden.json.
func goldenEvents() []obs.TraceEvent {
	return []obs.TraceEvent{
		{Name: "campaign", Cat: "campaign", Ph: "X", Ts: 0, Dur: 900, Pid: 1, Tid: 1,
			Args: map[string]string{"path": "campaign"}},
		{Name: "config:0", Cat: "config", Ph: "X", Ts: 10, Dur: 400, Pid: 1, Tid: 2,
			Args: map[string]string{"path": "campaign/config:0"}},
		{Name: "netcalc", Cat: "netcalc", Ph: "X", Ts: 20, Dur: 150, Pid: 1, Tid: 2,
			Args: map[string]string{"path": "campaign/config:0/netcalc"}},
		{Name: "port:S1->e001", Cat: "port", Ph: "X", Ts: 30, Dur: 60, Pid: 1, Tid: 3,
			Args: map[string]string{"path": "campaign/config:0/netcalc/port:S1->e001"}},
	}
}

// TestChromeTraceGoldenRoundTrip pins the Chrome-trace encoding to the
// golden fixture byte-for-byte and checks the fixture decodes back to
// the same events — the format chrome://tracing and Perfetto consume.
func TestChromeTraceGoldenRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.EncodeChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "chrome_trace.golden.json")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoding drifted from the golden fixture:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	var back []obs.TraceEvent
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden fixture is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(back, goldenEvents()) {
		t.Errorf("fixture round-trip differs:\ngot %+v\nwant %+v", back, goldenEvents())
	}
}

// TestTracerEventsAreValidChromeTrace checks a real tracer's emitted
// file parses as a JSON array of complete ("X") duration events with
// positive tids — the loadability contract of -tracefile.
func TestTracerEventsAreValidChromeTrace(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx, root := obs.StartSpan(ctx, "campaign")
	_, sp := obs.StartSpan(ctx, "config:0")
	sp.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []obs.TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		if e.Tid < 1 {
			t.Errorf("event %q has tid %d, want >= 1", e.Name, e.Tid)
		}
	}
}

// TestHistogramBuckets checks the power-of-two bucketing: count, sum,
// max, and per-bucket tallies for a handful of known observations.
func TestHistogramBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test.h", obs.Deterministic, "")
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := reg.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.Count != 7 || hv.Sum != 1011 || hv.Max != 1000 {
		t.Errorf("count/sum/max = %d/%d/%d, want 7/1011/1000", hv.Count, hv.Sum, hv.Max)
	}
	got := map[string]int64{}
	for _, b := range hv.Buckets {
		got[b.Range] = b.Count
	}
	want := map[string]int64{"0": 1, "1": 2, "2-3": 2, "4-7": 1, "512-1023": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %v, want %v", got, want)
	}
}

// TestGauge pins the gauge surface: nil safety, Set/Add semantics,
// snapshot rendering, and Deterministic-class filtering.
func TestGauge(t *testing.T) {
	var nilReg *obs.Registry
	ng := nilReg.Gauge("x", obs.BestEffort, "")
	ng.Set(5)
	ng.Add(2)
	if ng.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	reg := obs.NewRegistry()
	g := reg.Gauge("pool_live", obs.BestEffort, "live sessions")
	g.Set(3)
	g.Add(2)
	g.Add(-1)
	if g.Value() != 4 {
		t.Fatalf("gauge value %d, want 4", g.Value())
	}
	if again := reg.Gauge("pool_live", obs.BestEffort, "other"); again != g {
		t.Error("gauge registration is not get-or-create")
	}
	reg.Gauge("det_level", obs.Deterministic, "").Set(7)
	s := reg.Snapshot()
	if s.Gauge("pool_live") != 4 || s.Gauge("det_level") != 7 || s.Gauge("absent") != 0 {
		t.Errorf("snapshot gauges wrong: %+v", s.Gauges)
	}
	det := s.Deterministic()
	if len(det.Gauges) != 1 || det.Gauges[0].Name != "det_level" {
		t.Errorf("Deterministic() kept %+v, want only det_level", det.Gauges)
	}
}

// TestQuantileProperty checks Quantile against a sorted reference over
// randomized data sets: the estimate is always >= the exact
// nearest-rank quantile and stays inside its power-of-two bucket (the
// factor-2 envelope the histogram promises), exactly == for data sets
// of distinct powers of two minus one.
func TestQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		data := make([]int64, n)
		h := &obs.Histogram{}
		for i := range data {
			switch rng.Intn(3) {
			case 0:
				data[i] = int64(rng.Intn(8))
			case 1:
				data[i] = int64(rng.Intn(1 << 10))
			default:
				data[i] = int64(rng.Intn(1 << 20))
			}
			h.Observe(data[i])
		}
		sorted := append([]int64(nil), data...)
		slices.Sort(sorted)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			ref := sorted[rank-1]
			got := h.Quantile(q)
			if got < ref {
				t.Fatalf("trial %d q=%g: Quantile %d < exact %d", trial, q, got, ref)
			}
			if ref > 0 && got >= 2*ref && got > sorted[n-1] {
				t.Fatalf("trial %d q=%g: Quantile %d outside the factor-2 envelope of %d", trial, q, got, ref)
			}
			if got > sorted[n-1] {
				t.Fatalf("trial %d q=%g: Quantile %d above the observed max %d", trial, q, got, sorted[n-1])
			}
		}
	}
	// Empty and degenerate cases.
	var empty obs.Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	var nilH *obs.Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
}
