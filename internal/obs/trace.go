package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records hierarchical spans. Spans carry their full label path
// (e.g. "campaign/config:3/trajectory/path:v0001/0"), so the multiset
// of completed paths — the span *set*, see Shape — depends only on the
// work performed, not on scheduling: sequential and parallel runs over
// the same inputs produce the same set. Timestamps and lane (thread)
// assignments are wall-clock observations and naturally vary.
//
// A nil *Tracer is inert: StartSpan returns a nil *Span whose End
// no-ops, so tracing costs one pointer test when disabled.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	done  []SpanRecord
	lanes []bool
}

// NewTracer returns an empty tracer whose span timestamps are measured
// from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one in-flight trace region. End completes it; a nil *Span
// no-ops.
type Span struct {
	t       *Tracer
	path    string
	catPath string
	name    string
	start   time.Duration
	lane    int
	ended   bool
}

// SpanRecord is one completed span. Path is the full label path;
// CatPath is the same path with instance suffixes stripped
// ("campaign/config/trajectory/path") — the aggregation key for the
// human tree.
type SpanRecord struct {
	Path    string `json:"path"`
	CatPath string `json:"catPath"`
	Name    string `json:"name"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
	Lane    int    `json:"lane"`
}

// category strips the instance suffix from a span name:
// "port:S1->e001" → "port".
func category(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// start opens a span under parent (nil for a root span).
func (t *Tracer) start(parent *Span, name string) *Span {
	path, catPath := name, category(name)
	if parent != nil {
		path = parent.path + "/" + name
		catPath = parent.catPath + "/" + catPath
	}
	t.mu.Lock()
	lane := 0
	for ; lane < len(t.lanes); lane++ {
		if !t.lanes[lane] {
			break
		}
	}
	if lane == len(t.lanes) {
		t.lanes = append(t.lanes, false)
	}
	t.lanes[lane] = true
	t.mu.Unlock()
	return &Span{t: t, path: path, catPath: catPath, name: name, start: time.Since(t.epoch), lane: lane}
}

// End completes the span. Ending twice, or ending a nil span, no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.t.epoch) - s.start
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.t.lanes[s.lane] = false
	s.t.done = append(s.t.done, SpanRecord{
		Path:    s.path,
		CatPath: s.catPath,
		Name:    s.name,
		StartUs: s.start.Microseconds(),
		DurUs:   dur.Microseconds(),
		Lane:    s.lane,
	})
}

// Records returns the completed spans sorted by start time, then path.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.done...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUs != out[j].StartUs {
			return out[i].StartUs < out[j].StartUs
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Shape returns the sorted multiset of completed span label paths —
// the scheduling-independent part of a trace. Two runs over the same
// work produce equal shapes regardless of worker count.
func (t *Tracer) Shape() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]string, len(t.done))
	for i, r := range t.done {
		out[i] = r.Path
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// TraceEvent is one Chrome-trace-viewer "complete" event (ph "X").
// A trace file is a plain JSON array of these, loadable in
// chrome://tracing or https://ui.perfetto.dev.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Events converts the completed spans to Chrome trace events. Lanes
// map to tids (+1: tid 0 renders oddly in some viewers).
func (t *Tracer) Events() []TraceEvent {
	recs := t.Records()
	evs := make([]TraceEvent, len(recs))
	for i, r := range recs {
		evs[i] = TraceEvent{
			Name: r.Name,
			Cat:  category(r.Name),
			Ph:   "X",
			Ts:   r.StartUs,
			Dur:  r.DurUs,
			Pid:  1,
			Tid:  r.Lane + 1,
			Args: map[string]string{"path": r.Path},
		}
	}
	return evs
}

// WriteChromeTrace writes the trace as an indented JSON array of
// complete events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return EncodeChromeTrace(w, t.Events())
}

// EncodeChromeTrace writes events in the repository's canonical
// Chrome-trace encoding (indented JSON array; the golden fixture in
// testdata pins the format).
func EncodeChromeTrace(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

// treeNode aggregates the spans sharing one category path.
type treeNode struct {
	count int64
	total int64 // µs
	max   int64 // µs
}

// WriteTree prints a human summary of the trace: one line per span
// category path, with counts and total/max duration, indented by
// depth. Instances ("path:v0001/0", "port:S1->e003") are aggregated
// under their category so large traces stay readable.
func (t *Tracer) WriteTree(w io.Writer) error {
	nodes := map[string]*treeNode{}
	for _, r := range t.Records() {
		n := nodes[r.CatPath]
		if n == nil {
			n = &treeNode{}
			nodes[r.CatPath] = n
		}
		n.count++
		n.total += r.DurUs
		if r.DurUs > n.max {
			n.max = r.DurUs
		}
	}
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := nodes[k]
		depth := strings.Count(k, "/")
		name := k[strings.LastIndexByte(k, '/')+1:]
		width := 28 - 2*depth
		if width < len(name) {
			width = len(name)
		}
		if _, err := fmt.Fprintf(w, "%s%-*s %7d span(s) %12s total %12s max\n",
			strings.Repeat("  ", depth), width, name, n.count,
			usString(n.total), usString(n.max)); err != nil {
			return err
		}
	}
	return nil
}

func usString(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
