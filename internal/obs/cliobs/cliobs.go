// Package cliobs wires the observability subsystem (internal/obs) and
// the Go runtime profilers into a command-line program: every afdx-*
// CLI registers the same flag set (-metrics, -tracefile, -spantree,
// -cpuprofile, -memprofile, -trace, -log, -logjson), starts a Session
// after flag parsing, threads Session.Context() into the analysis
// entry points, and exits through Session.Exit so the collected
// artifacts are flushed on every exit path.
//
// All flags default to off, in which case the Session is free: the
// context carries no registry or tracer, the logger discards, and the
// engines skip their instrumentation on a nil check.
//
// Every artifact sink is explicit and stdout is refused (oplog.Sink):
// the CLIs' stdout carries machine-readable output (bounds tables,
// selfcheck JSON, the afdx-serve readiness line), so observability
// can only write to stderr or named files and the stdout-purity
// contract holds by construction on every exit path, signal-triggered
// ones included.
package cliobs

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"afdx/internal/obs"
	"afdx/internal/obs/oplog"
)

// Flags holds the shared observability flag values.
type Flags struct {
	CPUProfile string
	MemProfile string
	ExecTrace  string
	Metrics    string
	TraceFile  string
	SpanTree   bool
	Log        string
	LogJSON    bool
}

// Register installs the shared observability flags on a flag set
// (normally flag.CommandLine, before flag.Parse).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.ExecTrace, "trace", "", "write a Go runtime execution trace to this file")
	fs.StringVar(&f.Metrics, "metrics", "", "write the engine metrics snapshot as JSON to this file on exit")
	fs.StringVar(&f.TraceFile, "tracefile", "", "write the span trace (Chrome trace-viewer JSON) to this file on exit")
	fs.BoolVar(&f.SpanTree, "spantree", false, "print the aggregated span tree to stderr on exit")
	fs.StringVar(&f.Log, "log", "", `write structured logs to "stderr" or a file (stdout is refused; default off)`)
	fs.BoolVar(&f.LogJSON, "logjson", false, "emit -log records as JSON lines instead of text")
	return f
}

// Session is one CLI run's observability state: the registry and
// tracer handed to the engines (either may be nil when the matching
// flags are off) plus the running profilers.
type Session struct {
	Registry *obs.Registry
	Tracer   *obs.Tracer
	// Logger is the run's structured logger: the -log sink (stderr or
	// a file, in -logjson or text form), or a discard logger when the
	// flag is off — never nil, so callers thread it unconditionally.
	Logger *slog.Logger

	flags   Flags
	cpuFile *os.File
	trcFile *os.File
	logSink io.WriteCloser
	closed  bool
}

// Start opens the profiler outputs and returns the run's Session. On
// error the partially started profilers are stopped; the caller can
// exit without closing.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: *f, Logger: oplog.Discard()}
	if f.Metrics != "" {
		s.Registry = obs.NewRegistry()
	}
	if f.TraceFile != "" || f.SpanTree {
		s.Tracer = obs.NewTracer()
	}
	if f.Log != "" {
		sink, err := oplog.Sink(f.Log)
		if err != nil {
			return nil, fmt.Errorf("cliobs: -log: %w", err)
		}
		s.logSink = sink
		s.Logger = oplog.New(sink, f.LogJSON)
	}
	if f.CPUProfile != "" {
		fh, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cliobs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fh.Close()
			return nil, fmt.Errorf("cliobs: -cpuprofile: %w", err)
		}
		s.cpuFile = fh
	}
	if f.ExecTrace != "" {
		fh, err := os.Create(f.ExecTrace)
		if err != nil {
			s.stopProfilers()
			return nil, fmt.Errorf("cliobs: -trace: %w", err)
		}
		if err := trace.Start(fh); err != nil {
			fh.Close()
			s.stopProfilers()
			return nil, fmt.Errorf("cliobs: -trace: %w", err)
		}
		s.trcFile = fh
	}
	return s, nil
}

// EnsureRegistry returns the session's registry, creating one when no
// flag asked for it. Long-running commands whose metrics surface is
// always on (afdx-serve's /v1/metrics endpoint and SSE counter stream)
// call this after Start; -metrics then additionally snapshots the same
// registry to a file on exit, exactly as for the one-shot CLIs.
func (s *Session) EnsureRegistry() *obs.Registry {
	if s.Registry == nil {
		s.Registry = obs.NewRegistry()
	}
	return s.Registry
}

// Context returns a context carrying the session's registry and
// tracer, for the *Ctx analysis entry points. With every flag off it
// is a plain background context.
func (s *Session) Context() context.Context {
	ctx := context.Background()
	if s.Registry != nil {
		ctx = obs.WithRegistry(ctx, s.Registry)
	}
	if s.Tracer != nil {
		ctx = obs.WithTracer(ctx, s.Tracer)
	}
	return ctx
}

// stopProfilers stops the CPU profiler and the execution tracer.
func (s *Session) stopProfilers() error {
	var errs []error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		errs = append(errs, s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.trcFile != nil {
		trace.Stop()
		errs = append(errs, s.trcFile.Close())
		s.trcFile = nil
	}
	return errors.Join(errs...)
}

// Close flushes every requested artifact: stops the profilers, writes
// the heap profile, the metrics snapshot and the span trace, and
// prints the span tree. It is idempotent; only the first call does
// the work.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	errs = append(errs, s.stopProfilers())
	if s.flags.MemProfile != "" {
		runtime.GC() // materialize the live heap before sampling
		if fh, err := os.Create(s.flags.MemProfile); err != nil {
			errs = append(errs, fmt.Errorf("cliobs: -memprofile: %w", err))
		} else {
			errs = append(errs, pprof.WriteHeapProfile(fh), fh.Close())
		}
	}
	if s.flags.Metrics != "" && s.Registry != nil {
		if fh, err := os.Create(s.flags.Metrics); err != nil {
			errs = append(errs, fmt.Errorf("cliobs: -metrics: %w", err))
		} else {
			errs = append(errs, s.Registry.Snapshot().WriteJSON(fh), fh.Close())
		}
	}
	if s.logSink != nil {
		errs = append(errs, s.logSink.Close())
		s.logSink = nil
	}
	if s.Tracer != nil {
		if s.flags.TraceFile != "" {
			if fh, err := os.Create(s.flags.TraceFile); err != nil {
				errs = append(errs, fmt.Errorf("cliobs: -tracefile: %w", err))
			} else {
				errs = append(errs, s.Tracer.WriteChromeTrace(fh), fh.Close())
			}
		}
		if s.flags.SpanTree {
			errs = append(errs, s.Tracer.WriteTree(os.Stderr))
		}
	}
	return errors.Join(errs...)
}

// Exit closes the session and terminates the process. A flush failure
// on an otherwise successful run turns exit code 0 into 1 — silently
// dropping a requested profile would defeat the point of asking for
// one.
func (s *Session) Exit(code int) {
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
