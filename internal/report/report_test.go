package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"name", "alpha", "22", "+"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[0])
	for _, l := range lines {
		if len(l) != width {
			t.Errorf("ragged table line %q", l)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, []string{"a", "b"}, [][]string{{"only"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short rows should render with empty padding")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Us(1.234) != "1.23" {
		t.Errorf("Us = %q", Us(1.234))
	}
	if Pct(10.5) != "10.50%" {
		t.Errorf("Pct = %q", Pct(10.5))
	}
	if Int(7) != "7" {
		t.Errorf("Int = %q", Int(7))
	}
}
