// Package report renders the experiment outputs: fixed-width ASCII
// tables for terminals and CSV series for plotting, matching the rows
// and series the paper's tables and figures display.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes a fixed-width ASCII table with a header row.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		b.WriteString("|")
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		return b.String()
	}
	sep := "+"
	for _, wd := range widths {
		sep += strings.Repeat("-", wd+2) + "+"
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, sep)
	return err
}

// CSV writes a simple comma-separated table (no quoting: the reports
// only emit numeric cells and plain identifiers).
func CSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Us formats a microsecond quantity.
func Us(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Int formats an integer cell.
func Int(v int) string { return fmt.Sprintf("%d", v) }
