// Priority: the ARINC 664 two-level QoS extension. Demote two VLs of
// the paper's sample configuration to the low priority level, compute
// static-priority Network Calculus bounds (high level: port service
// minus one non-preemptive blocking frame; low level: service left over
// by the high level), and validate against the priority-aware simulator.
package main

import (
	"fmt"
	"log"

	"afdx"
)

func main() {
	log.SetFlags(0)

	net := afdx.Figure2Config()
	net.VL("v3").Priority = 1 // low
	net.VL("v4").Priority = 1 // low
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}
	nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The FIFO reference (paper configuration).
	flatPG, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := afdx.AnalyzeNC(flatPG, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("static-priority vs FIFO Network Calculus bounds (us):")
	fmt.Printf("%-6s %-6s %14s %10s\n", "path", "level", "static-priority", "FIFO")
	for _, pid := range net.AllPaths() {
		lvl := "high"
		if net.VL(pid.VL).Priority > 0 {
			lvl = "low"
		}
		fmt.Printf("%-6s %-6s %14.2f %10.2f\n",
			pid, lvl, nc.PathDelays[pid], flat.PathDelays[pid])
	}

	// The trajectory engine is FIFO-only, as in the paper:
	if _, err := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions()); err != nil {
		fmt.Printf("\ntrajectory on mixed priorities: %v\n", err)
	}

	// Validate with the priority-aware simulator.
	worst := map[afdx.PathID]float64{}
	for seed := int64(0); seed < 50; seed++ {
		cfg := afdx.DefaultSimConfig(seed)
		cfg.DurationUs = 64_000
		res, err := afdx.Simulate(pg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for pid, st := range res.Paths {
			if st.MaxDelayUs > worst[pid] {
				worst[pid] = st.MaxDelayUs
			}
		}
	}
	fmt.Println("\nworst simulated delay vs static-priority bound (us):")
	for _, pid := range net.AllPaths() {
		ok := "ok"
		if worst[pid] > nc.PathDelays[pid] {
			ok = "VIOLATION"
		}
		fmt.Printf("%-6s sim %8.2f  bound %8.2f  %s\n", pid, worst[pid], nc.PathDelays[pid], ok)
	}
}
