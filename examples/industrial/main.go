// Industrial: generate a synthetic Airbus-scale configuration (the
// substitution for the paper's proprietary network), run the combined
// analysis over its thousands of VL paths, and print the Table I
// statistics along with certification-relevant outputs: the tightest
// bound per path and the switch buffer dimensioning figures.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"afdx"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "configuration seed")
	full := flag.Bool("full", false, "full ~1000-VL configuration (slower); default is a 200-VL variant")
	flag.Parse()

	spec := afdx.DefaultGeneratorSpec(*seed)
	if !*full {
		spec.NumVLs = 200
	}
	net, err := afdx.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.ComputeStats())

	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := afdx.Compare(pg)
	if err != nil {
		log.Fatal(err)
	}
	s := cmp.Summary()
	fmt.Printf("\nTable I statistics over %d paths:\n", s.NumPaths)
	fmt.Printf("  trajectory benefit: mean %.2f%%, max %.2f%%, min %.2f%%\n",
		s.MeanBenefitPct, s.MaxBenefitPct, s.MinBenefitPct)
	fmt.Printf("  combined benefit:   mean %.2f%%, max %.2f%%, min %.2f%%\n",
		s.MeanBestPct, s.MaxBestPct, s.MinBestPct)
	fmt.Printf("  trajectory tighter on %.1f%% of paths\n", s.TrajectoryWinFrac*100)

	// The certification deliverable: the guaranteed bound per path is
	// the combined one. Show the five slowest paths.
	type slow struct {
		pid afdx.PathID
		us  float64
	}
	var slows []slow
	for pid, pc := range cmp.PerPath {
		slows = append(slows, slow{pid, pc.BestUs})
	}
	sort.Slice(slows, func(i, j int) bool { return slows[i].us > slows[j].us })
	fmt.Println("\nfive slowest paths (combined bound):")
	for _, sl := range slows[:5] {
		vl := net.VL(sl.pid.VL)
		fmt.Printf("  %-10s %9.2f us  (BAG %3.0f ms, s_max %4d B, %d switches)\n",
			sl.pid, sl.us, vl.BAGMs, vl.SMaxBytes, len(vl.Paths[sl.pid.PathIdx])-2)
	}

	// Buffer dimensioning (paper section II-B): the Network Calculus
	// backlog bound per output port.
	nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]afdx.PortID, 0, len(nc.Ports))
	for id := range nc.Ports {
		ids = append(ids, id)
	}
	afdx.SortPortIDs(ids)
	maxPort, maxBits := afdx.PortID{}, 0.0
	for _, id := range ids {
		if p := nc.Ports[id]; p.BacklogBits > maxBits {
			maxPort, maxBits = id, p.BacklogBits
		}
	}
	fmt.Printf("\nlargest switch output buffer requirement: %.0f bytes at port %s\n",
		maxBits/8, maxPort)
}
