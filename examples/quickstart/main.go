// Quickstart: build the paper's Figure 2 sample configuration through
// the public API, run both worst-case analyses and the combined method,
// and print the per-path bounds — the smallest complete use of the
// library.
package main

import (
	"fmt"
	"log"
	"sort"

	"afdx"
)

func main() {
	log.SetFlags(0)

	// The paper's sample network: five emitting end systems, three
	// switches, VLs v1..v4 converging on e6 and v5 ending at e7. Every
	// VL has BAG = 4 ms and s_max = 500 B.
	net := afdx.Figure2Config()
	fmt.Println("configuration:", net.Name)
	fmt.Println(net.ComputeStats())
	fmt.Println()

	// Derive the port-level view (validates the configuration and
	// checks that it is feed-forward).
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}

	// Run both analyses and keep the best bound per path.
	cmp, err := afdx.Compare(pg)
	if err != nil {
		log.Fatal(err)
	}

	paths := net.AllPaths()
	sort.Slice(paths, func(i, j int) bool { return paths[i].VL < paths[j].VL })
	fmt.Println("worst-case end-to-end delay bounds (us):")
	fmt.Printf("%-8s %12s %12s %12s %10s\n", "path", "WCNC", "Trajectory", "Best", "benefit")
	for _, pid := range paths {
		pc := cmp.PerPath[pid]
		fmt.Printf("%-8s %12.2f %12.2f %12.2f %9.2f%%\n",
			pid, pc.NCUs, pc.TrajectoryUs, pc.BestUs, pc.BenefitPct)
	}

	s := cmp.Summary()
	fmt.Printf("\nmean benefit of the trajectory approach: %.2f%% over %d paths\n",
		s.MeanBenefitPct, s.NumPaths)

	// A custom network is built the same way:
	custom := &afdx.Network{
		Name:       "two-switch",
		Params:     afdx.DefaultParams(),
		EndSystems: []string{"sensor", "actuator"},
		Switches:   []string{"SW1", "SW2"},
		VLs: []*afdx.VirtualLink{{
			ID: "cmd", Source: "sensor", BAGMs: 8, SMaxBytes: 200, SMinBytes: 64,
			Paths: [][]string{{"sensor", "SW1", "SW2", "actuator"}},
		}},
	}
	pg2, err := afdx.BuildPortGraph(custom, afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}
	nc, err := afdx.AnalyzeNC(pg2, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}
	d := nc.PathDelays[afdx.PathID{VL: "cmd", PathIdx: 0}]
	fmt.Printf("\ncustom network: bound for VL cmd = %.2f us\n", d)
}
