// Simcheck: sandwich the analytic bounds between achievable delays. The
// discrete-event simulator replays the Figure 2 sample configuration
// under many randomized offset assignments and under the adversarial
// synchronized burst; no observed delay may exceed the sound analyses
// (Network Calculus, ungrouped Trajectory). The example also
// demonstrates the staggered-arrival scenario in which the grouped
// trajectory bound of the 2010 paper is exceeded — the optimism only
// discovered years later (see DESIGN.md).
package main

import (
	"fmt"
	"log"

	"afdx"
)

func main() {
	log.SetFlags(0)
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		log.Fatal(err)
	}
	nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		log.Fatal(err)
	}
	trGrouped, err := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions())
	if err != nil {
		log.Fatal(err)
	}
	trUngrouped, err := afdx.AnalyzeTrajectory(pg, afdx.TrajectoryOptions{Grouping: false})
	if err != nil {
		log.Fatal(err)
	}

	// Randomized offsets: record the worst observation per path.
	worst := map[afdx.PathID]float64{}
	for seed := int64(0); seed < 100; seed++ {
		cfg := afdx.DefaultSimConfig(seed)
		cfg.DurationUs = 64_000
		res, err := afdx.Simulate(pg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for pid, st := range res.Paths {
			if st.MaxDelayUs > worst[pid] {
				worst[pid] = st.MaxDelayUs
			}
		}
	}
	fmt.Println("worst simulated delay vs analytic bounds (100 random seeds):")
	fmt.Printf("%-8s %10s %10s %12s %14s\n", "path", "sim max", "WCNC", "Traj (grp)", "Traj (ungrp)")
	for _, pid := range pg.Net.AllPaths() {
		fmt.Printf("%-8s %10.2f %10.2f %12.2f %14.2f\n",
			pid, worst[pid], nc.PathDelays[pid],
			trGrouped.PathDelays[pid], trUngrouped.PathDelays[pid])
		if worst[pid] > nc.PathDelays[pid] || worst[pid] > trUngrouped.PathDelays[pid] {
			log.Fatalf("UNSOUND: simulated %v exceeded a sound bound", pid)
		}
	}

	// The documented corner case: staggered arrivals drive v1 to ~288 us,
	// above the grouped trajectory bound (248 us) but below the
	// ungrouped one (288 us).
	cfg := afdx.SimConfig{
		DurationUs: 4000,
		OffsetsUs:  map[string]float64{"v1": 0.002, "v2": 0.001, "v3": 0, "v4": 0, "v5": 2000},
	}
	res, err := afdx.Simulate(pg, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	d := res.Paths[pid].MaxDelayUs
	fmt.Printf("\nstaggered scenario: v1 observed at %.2f us — grouped trajectory bound %.2f us\n",
		d, trGrouped.PathDelays[pid])
	if d > trGrouped.PathDelays[pid] {
		fmt.Println("=> reproduces the known optimism of the published grouped trajectory method")
	}
}
