// Parametric: regenerate the paper's Figure 7 and Figure 8 sweeps as
// CSV series ready for plotting — how the two methods' bounds for VL v1
// evolve when its frame size or its BAG varies on the Figure 2 sample
// configuration.
package main

import (
	"fmt"
	"log"
	"os"

	"afdx"
)

// boundsFor computes both bounds for v1 with an overridden contract.
func boundsFor(smaxBytes int, bagMs float64) (nc, tr float64, err error) {
	net := afdx.Figure2Config()
	net.VLs[0].SMaxBytes = smaxBytes
	net.VLs[0].SMinBytes = smaxBytes
	net.VLs[0].BAGMs = bagMs
	pg, err := afdx.BuildPortGraph(net, afdx.Relaxed)
	if err != nil {
		return 0, 0, err
	}
	ncRes, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		return 0, 0, err
	}
	trRes, err := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions())
	if err != nil {
		return 0, 0, err
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	return ncRes.PathDelays[pid], trRes.PathDelays[pid], nil
}

func main() {
	log.SetFlags(0)

	// Figure 7: s_max(v1) from 100 B to 1500 B, BAG fixed at 4 ms.
	fmt.Println("# figure 7: bounds for v1 vs s_max(v1); others at 500B/4ms")
	fmt.Println("smax_bytes,trajectory_us,wcnc_us")
	crossover := 0
	for s := 100; s <= 1500; s += 100 {
		nc, tr, err := boundsFor(s, 4)
		if err != nil {
			log.Fatal(err)
		}
		if nc < tr {
			crossover = s
		}
		fmt.Printf("%d,%.2f,%.2f\n", s, tr, nc)
	}
	fmt.Fprintf(os.Stderr, "figure 7: WCNC tighter up to s_max = %d B (paper: ~500 B)\n", crossover)

	// Figure 8: BAG(v1) over the harmonic values, s_max fixed at 500 B.
	fmt.Println()
	fmt.Println("# figure 8: bounds for v1 vs BAG(v1); others at 500B/4ms")
	fmt.Println("bag_ms,trajectory_us,wcnc_us")
	for bag := 1.0; bag <= 128; bag *= 2 {
		nc, tr, err := boundsFor(500, bag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%g,%.2f,%.2f\n", bag, tr, nc)
	}
	fmt.Fprintln(os.Stderr, "figure 8: the trajectory series is constant; WCNC grows as the BAG shrinks")
}
