package afdx_test

import (
	"path/filepath"
	"testing"

	"afdx"
)

// The facade tests exercise the full public workflow end to end; the
// numerical correctness of each engine is covered by the internal
// package tests.
func TestFacadeQuickstartWorkflow(t *testing.T) {
	net := afdx.Figure2Config()
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := afdx.Compare(pg)
	if err != nil {
		t.Fatal(err)
	}
	s := cmp.Summary()
	if s.NumPaths != 5 {
		t.Errorf("paths = %d, want 5", s.NumPaths)
	}
	if s.MeanBestPct < 0 {
		t.Errorf("combined benefit = %g%%, want >= 0", s.MeanBestPct)
	}
}

func TestFacadeAnalyses(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := afdx.AnalyzeNC(pg, afdx.DefaultNCOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := afdx.AnalyzeTrajectory(pg, afdx.DefaultTrajectoryOptions())
	if err != nil {
		t.Fatal(err)
	}
	pid := afdx.PathID{VL: "v1", PathIdx: 0}
	if nc.PathDelays[pid] <= 0 || tr.PathDelays[pid] <= 0 {
		t.Error("bounds must be positive")
	}
	if tr.PathDelays[pid] >= nc.PathDelays[pid] {
		t.Error("trajectory should win on the sample configuration")
	}
}

func TestFacadeSimulation(t *testing.T) {
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	cfg := afdx.DefaultSimConfig(1)
	cfg.DurationUs = 8000
	res, err := afdx.Simulate(pg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesEmitted == 0 || res.MaxDelayUs() <= 0 {
		t.Error("simulation should deliver frames")
	}
}

func TestFacadeGeneratorAndCodec(t *testing.T) {
	spec := afdx.DefaultGeneratorSpec(42)
	spec.NumVLs = 30
	spec.NumSwitches = 3
	spec.ESPerSwitch = 3
	net, err := afdx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gen.json")
	if err := net.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := afdx.LoadJSON(path, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != net.Name || len(loaded.VLs) != len(net.VLs) {
		t.Error("round trip mismatch via facade")
	}
}

func TestFacadeFigure1(t *testing.T) {
	if _, err := afdx.BuildPortGraph(afdx.Figure1Config(), afdx.Strict); err != nil {
		t.Fatal(err)
	}
	p := afdx.DefaultParams()
	if p.LinkRateMbps != 100 {
		t.Errorf("default rate = %g", p.LinkRateMbps)
	}
}
