// Package afdx computes worst-case end-to-end delay bounds for AFDX
// (ARINC 664 part 7) avionics networks, reproducing Bauer, Scharbarg &
// Fraboul, "Worst-case end-to-end delay analysis of an avionics AFDX
// network" (DATE 2010).
//
// The package bundles:
//
//   - a structural model of AFDX configurations (end systems, switches,
//     multicast Virtual Links with BAG / s_min / s_max contracts);
//   - the Network Calculus analysis used for certification, with the
//     grouping (serialization) refinement;
//   - the Trajectory approach (busy-period response-time analysis),
//     with the same refinement;
//   - the combined analysis that keeps the tighter bound per VL path —
//     the paper's primary contribution;
//   - a discrete-event simulator producing achievable delays;
//   - a generator of synthetic industrial-scale configurations matching
//     the published statistics of the (proprietary) Airbus network;
//   - a cross-engine conformance oracle that generates configuration
//     families and asserts the invariant lattice relating all of the
//     above (simulated ≤ achievable ≤ analytic bounds, combined =
//     per-path minimum, refinements never loosen), with a shrinker
//     that minimises violations into a replay corpus.
//
// # Quick start
//
//	net := afdx.Figure2Config()              // the paper's sample network
//	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
//	cmp, err := afdx.Compare(pg)             // both analyses, per path
//	s := cmp.Summary()                       // Table I statistics
//
// The internal packages hold the implementations; this package is the
// stable public surface re-exporting them.
package afdx

import (
	"context"
	"io"

	iafdx "afdx/internal/afdx"
	"afdx/internal/configgen"
	"afdx/internal/conformance"
	"afdx/internal/core"
	"afdx/internal/diag"
	"afdx/internal/exact"
	"afdx/internal/incremental"
	"afdx/internal/lint"
	"afdx/internal/netcalc"
	"afdx/internal/obs"
	"afdx/internal/sim"
	"afdx/internal/trajectory"
)

// Network model types.
type (
	// Network is a static AFDX configuration.
	Network = iafdx.Network
	// VirtualLink is an ARINC 664 Virtual Link with its traffic contract
	// and multicast routing.
	VirtualLink = iafdx.VirtualLink
	// Params carries the physical parameters (link rate, latencies).
	Params = iafdx.Params
	// PathID identifies one (VL, destination) end-to-end path.
	PathID = iafdx.PathID
	// PortID identifies an output port by its directed link.
	PortID = iafdx.PortID
	// Port is one FIFO output port with its competing flows.
	Port = iafdx.Port
	// PortGraph is the derived, analysable port-level view of a Network.
	PortGraph = iafdx.PortGraph
	// Stats summarises a configuration.
	Stats = iafdx.Stats
	// ValidationMode selects Strict or Relaxed contract validation.
	ValidationMode = iafdx.ValidationMode
)

// SortPortIDs orders port identifiers by (From, To), the canonical
// iteration order for per-port results gathered from a map.
func SortPortIDs(ids []PortID) { iafdx.SortPortIDs(ids) }

// SortPathIDs orders path identifiers by (VL, PathIdx), the canonical
// iteration order for per-path results gathered from a map.
func SortPathIDs(ids []PathID) { iafdx.SortPathIDs(ids) }

// Validation modes.
const (
	// Strict enforces the full ARINC 664 contract (power-of-two BAGs,
	// Ethernet frame bounds).
	Strict = iafdx.Strict
	// Relaxed allows the out-of-standard values used by the paper's
	// parametric sweeps.
	Relaxed = iafdx.Relaxed
)

// DefaultParams returns the paper's physical parameters: 100 Mb/s links,
// 16 us technological latency per output port.
func DefaultParams() Params { return iafdx.DefaultParams() }

// BuildPortGraph validates a configuration and derives its port graph.
func BuildPortGraph(n *Network, mode ValidationMode) (*PortGraph, error) {
	return iafdx.BuildPortGraph(n, mode)
}

// LoadJSON reads and validates a configuration file.
func LoadJSON(path string, mode ValidationMode) (*Network, error) {
	return iafdx.LoadJSON(path, mode)
}

// DecodeJSON parses a configuration without validating it (the linter's
// entry point: it reports every violation itself).
func DecodeJSON(r io.Reader) (*Network, error) { return iafdx.DecodeJSON(r) }

// Figure1Config returns a reconstruction of the paper's illustrative
// Figure 1 configuration.
func Figure1Config() *Network { return iafdx.Figure1Config() }

// Figure2Config returns the paper's Figure 2 sample configuration.
func Figure2Config() *Network { return iafdx.Figure2Config() }

// Static analysis (linting) of configurations.
type (
	// Diagnostic is one coded, located, graded lint finding.
	Diagnostic = diag.Diagnostic
	// DiagnosticCode is a stable AFDX### diagnostic identifier.
	DiagnosticCode = diag.Code
	// Severity grades a diagnostic (Info, Warning, Error).
	Severity = diag.Severity
	// LintAnalyzer is one registered static check.
	LintAnalyzer = lint.Analyzer
	// LintOptions configures a lint run.
	LintOptions = lint.Options
	// LintReport is the outcome of linting one configuration, with
	// text, JSON, and SARIF renderers and the 0/1/2 exit-code mapping.
	LintReport = lint.Report
)

// Diagnostic severities.
const (
	SeverityInfo    = diag.Info
	SeverityWarning = diag.Warning
	SeverityError   = diag.Error
)

// DefaultLintOptions lints with the strict ARINC 664 contract and a 95%
// utilization headroom warning threshold.
func DefaultLintOptions() LintOptions { return lint.DefaultOptions() }

// Lint runs every registered static analyzer over a configuration and
// returns the assembled report. It never fails: a broken configuration
// yields Error diagnostics, not an error.
func Lint(net *Network, opts LintOptions) *LintReport { return lint.Run(net, opts) }

// LintAnalyzers returns the registered analyzers sorted by code.
func LintAnalyzers() []*LintAnalyzer { return lint.Analyzers() }

// Network Calculus analysis.
type (
	// NCOptions selects Network Calculus variants (grouping, propagation).
	NCOptions = netcalc.Options
	// NCResult carries per-port and per-path Network Calculus bounds.
	NCResult = netcalc.Result
)

// DefaultNCOptions matches the paper's WCNC column (grouping enabled).
func DefaultNCOptions() NCOptions { return netcalc.DefaultOptions() }

// NCAnalysis selects one rung of the Network Calculus tightness/cost
// ladder (set it on NCOptions.Analysis).
type NCAnalysis = netcalc.Analysis

// The ladder, cheapest/loosest first.
const (
	NCAnalysisTFA  = netcalc.AnalysisTFA
	NCAnalysisWCNC = netcalc.AnalysisWCNC
	NCAnalysisFIFO = netcalc.AnalysisFIFO
)

// NCAnalyses returns every tier in ladder order (loosest first).
func NCAnalyses() []NCAnalysis { return netcalc.Analyses() }

// ParseNCAnalysis parses a tier name ("TFA", "WCNC", "FIFO", any
// case). Every CLI's -analysis flag goes through this one parser so an
// unknown tier fails identically everywhere.
func ParseNCAnalysis(s string) (NCAnalysis, error) { return netcalc.ParseAnalysis(s) }

// ParseNCAnalysisList parses a comma-separated tier list, preserving
// order and dropping duplicates.
func ParseNCAnalysisList(s string) ([]NCAnalysis, error) { return netcalc.ParseAnalysisList(s) }

// AnalyzeNC runs the Network Calculus analysis.
func AnalyzeNC(pg *PortGraph, opts NCOptions) (*NCResult, error) {
	return netcalc.Analyze(pg, opts)
}

// AnalyzeNCCtx is AnalyzeNC with observability threaded through the
// context (see WithObservation).
func AnalyzeNCCtx(ctx context.Context, pg *PortGraph, opts NCOptions) (*NCResult, error) {
	return netcalc.AnalyzeCtx(ctx, pg, opts)
}

// Trajectory analysis.
type (
	// TrajectoryOptions selects Trajectory variants (grouping, transition
	// term placement, prefix bounding).
	TrajectoryOptions = trajectory.Options
	// TrajectoryResult carries per-path Trajectory bounds and details.
	TrajectoryResult = trajectory.Result
)

// DefaultTrajectoryOptions matches the paper's Trajectory column.
func DefaultTrajectoryOptions() TrajectoryOptions { return trajectory.DefaultOptions() }

// AnalyzeTrajectory runs the Trajectory analysis.
func AnalyzeTrajectory(pg *PortGraph, opts TrajectoryOptions) (*TrajectoryResult, error) {
	return trajectory.Analyze(pg, opts)
}

// AnalyzeTrajectoryCtx is AnalyzeTrajectory with observability threaded
// through the context (see WithObservation).
func AnalyzeTrajectoryCtx(ctx context.Context, pg *PortGraph, opts TrajectoryOptions) (*TrajectoryResult, error) {
	return trajectory.AnalyzeCtx(ctx, pg, opts)
}

// TrajectoryExplanation decomposes one path's trajectory bound into its
// interference, transition and latency terms.
type TrajectoryExplanation = trajectory.Explanation

// ExplainTrajectory returns the term-by-term decomposition of one
// path's trajectory bound (the reviewable certification witness).
func ExplainTrajectory(pg *PortGraph, pid PathID, opts TrajectoryOptions) (*TrajectoryExplanation, error) {
	return trajectory.Explain(pg, pid, opts)
}

// ExplainTrajectoryCtx is ExplainTrajectory with cancellation and
// observability threaded through the context.
func ExplainTrajectoryCtx(ctx context.Context, pg *PortGraph, pid PathID, opts TrajectoryOptions) (*TrajectoryExplanation, error) {
	return trajectory.ExplainCtx(ctx, pg, pid, opts)
}

// NCExplanation decomposes one path's Network Calculus bound into its
// per-port terms.
type NCExplanation = netcalc.PathExplanation

// ExplainNC returns the per-port decomposition of one path's Network
// Calculus bound.
func ExplainNC(pg *PortGraph, pid PathID, opts NCOptions) (*NCExplanation, error) {
	return netcalc.Explain(pg, pid, opts)
}

// Combined comparison (the paper's primary contribution).
type (
	// Comparison is the per-path comparison of both methods.
	Comparison = core.Comparison
	// PathComparison carries one path's three bounds and benefits.
	PathComparison = core.PathComparison
	// ComparisonSummary is the Table I statistics structure.
	ComparisonSummary = core.Summary
)

// Compare runs both analyses with paper defaults and assembles the
// per-path comparison; Comparison.Summary yields Table I, ByBAG Figure 5
// and BySmax Figure 6.
func Compare(pg *PortGraph) (*Comparison, error) { return core.Compare(pg) }

// CompareWith runs both analyses with explicit options.
func CompareWith(pg *PortGraph, nc NCOptions, tr TrajectoryOptions) (*Comparison, error) {
	return core.CompareWith(pg, nc, tr)
}

// CompareCtx is Compare with observability threaded through the
// context (see WithObservation).
func CompareCtx(ctx context.Context, pg *PortGraph) (*Comparison, error) {
	return core.CompareCtx(ctx, pg)
}

// CompareWithCtx is CompareWith with observability threaded through
// the context.
func CompareWithCtx(ctx context.Context, pg *PortGraph, nc NCOptions, tr TrajectoryOptions) (*Comparison, error) {
	return core.CompareWithCtx(ctx, pg, nc, tr)
}

// Incremental what-if re-analysis (dependency-tracked caching).
type (
	// IncrementalSession is a stateful what-if loop: apply deltas,
	// re-analyse, with unchanged ports and paths served from cache.
	IncrementalSession = incremental.Session
	// IncrementalOptions binds a session's validation mode and engine
	// option sets.
	IncrementalOptions = incremental.Options
	// IncrementalResult carries one analysis round: both engine results
	// and the combined comparison.
	IncrementalResult = incremental.Result
	// Delta is one configuration mutation (BAG, s_max, priority,
	// reroute, VL added or removed).
	Delta = incremental.Delta
)

// DefaultIncrementalOptions analyses with both engines' paper defaults
// under Strict validation.
func DefaultIncrementalOptions() IncrementalOptions { return incremental.DefaultOptions() }

// NewIncrementalSession opens a what-if session over a private clone of
// the configuration.
func NewIncrementalSession(net *Network, opts IncrementalOptions) (*IncrementalSession, error) {
	return incremental.NewSession(net, opts)
}

// ParseDelta parses the compact delta syntax used by afdx-bounds
// ("bag v1 16", "smax v2 200", "priority v1 1", "drop v5",
// "reroute v1 es1,s1,es2", "add {...vl json...}").
func ParseDelta(s string) (Delta, error) { return incremental.ParseDelta(s) }

// AnalyzeIncremental applies a delta batch to the session (atomically:
// a rejected batch leaves the session unchanged) and re-analyses,
// reusing every port and path outcome whose inputs did not change. The
// result is bit-identical to a cold analysis of the mutated
// configuration, at every Parallel value.
func AnalyzeIncremental(ctx context.Context, s *IncrementalSession, deltas ...Delta) (*IncrementalResult, error) {
	return s.WhatIf(ctx, deltas...)
}

// Simulation.
type (
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult carries observed per-path delays.
	SimResult = sim.Result
	// SourceModel selects the simulated emission behaviour.
	SourceModel = sim.SourceModel
)

// Source models.
const (
	// GreedySources emit a frame every BAG (maximum contracted load).
	GreedySources = sim.GreedySources
	// PeriodicJitterSources add per-frame random emission jitter.
	PeriodicJitterSources = sim.PeriodicJitterSources
)

// DefaultSimConfig simulates greedy sources with random offsets.
func DefaultSimConfig(seed int64) SimConfig { return sim.DefaultConfig(seed) }

// Simulate runs the discrete-event simulator.
func Simulate(pg *PortGraph, cfg SimConfig) (*SimResult, error) { return sim.Run(pg, cfg) }

// SimulateCtx is Simulate with observability threaded through the
// context (see WithObservation).
func SimulateCtx(ctx context.Context, pg *PortGraph, cfg SimConfig) (*SimResult, error) {
	return sim.RunCtx(ctx, pg, cfg)
}

// Synthetic industrial configurations.
type (
	// GeneratorSpec parameterises the synthetic configuration generator.
	GeneratorSpec = configgen.Spec
)

// DefaultGeneratorSpec reproduces the published statistics of the
// paper's industrial configuration for a seed.
func DefaultGeneratorSpec(seed int64) GeneratorSpec { return configgen.DefaultSpec(seed) }

// Generate builds a synthetic industrial configuration.
func Generate(spec GeneratorSpec) (*Network, error) { return configgen.Generate(spec) }

// Mirror materialises the ARINC 664 dual-network (A/B) redundancy of a
// configuration: two isomorphic sub-networks, every VL duplicated.
func Mirror(n *Network) (*Network, error) { return configgen.Mirror(n) }

// Cross-engine conformance oracle (randomized differential testing).
type (
	// ConformanceOptions parameterises a conformance campaign.
	ConformanceOptions = conformance.Options
	// ConformanceReport is the deterministic campaign outcome.
	ConformanceReport = conformance.Report
	// ConformanceOracle checks the invariant lattice on one
	// configuration, with injectable engines for fault-injection tests.
	ConformanceOracle = conformance.Oracle
	// ConformanceViolation is one failed invariant on one path.
	ConformanceViolation = conformance.Violation
	// ConformanceInvariant names one relation of the invariant lattice.
	ConformanceInvariant = conformance.Invariant
)

// DefaultConformanceOptions checks 100 configurations from seed 1.
func DefaultConformanceOptions() ConformanceOptions { return conformance.DefaultOptions() }

// RunConformance executes a conformance campaign: generate
// configurations, run every engine on each, assert the invariant
// lattice (observed ≤ achievable ≤ analytic bounds, combined = per-path
// minimum, grouping and contract tightening never loosen a bound,
// parallel runs bit-identical to sequential), and shrink violations to
// minimal reproducing configurations.
func RunConformance(opts ConformanceOptions) (*ConformanceReport, error) {
	return conformance.Run(opts)
}

// RunConformanceCtx is RunConformance with observability threaded
// through the context: the campaign opens a "campaign" span with one
// "config:<i>" child per configuration, and every engine run nests
// its spans and counters beneath those.
func RunConformanceCtx(ctx context.Context, opts ConformanceOptions) (*ConformanceReport, error) {
	return conformance.RunCtx(ctx, opts)
}

// NewConformanceOracle returns the invariant checker over the real
// engines with default budgets.
func NewConformanceOracle() *ConformanceOracle { return conformance.NewOracle() }

// Exact worst-case search (offset exploration; small configurations).
type (
	// ExactOptions parameterises the offset search.
	ExactOptions = exact.Options
	// ExactResult carries the worst achievable delays found and their
	// witness offset assignments.
	ExactResult = exact.Result
)

// DefaultExactOptions uses an eighth-of-BAG grid with refinement.
func DefaultExactOptions() ExactOptions { return exact.DefaultOptions() }

// SearchWorstCase explores source emission offsets with the simulator
// and returns achievable worst-case delays per path (lower bounds that
// sandwich the analytic upper bounds).
func SearchWorstCase(pg *PortGraph, opts ExactOptions) (*ExactResult, error) {
	return exact.Search(pg, opts)
}

// SearchWorstCaseCtx is SearchWorstCase with observability threaded
// through the context.
func SearchWorstCaseCtx(ctx context.Context, pg *PortGraph, opts ExactOptions) (*ExactResult, error) {
	return exact.SearchCtx(ctx, pg, opts)
}

// Observability (engine metrics and span tracing).
//
// The engines are observation-transparent: attaching a registry or
// tracer never changes any computed bound, and the Deterministic
// subset of the metric snapshot is bit-identical across worker counts
// and repeated runs.
type (
	// ObsRegistry collects named counters and histograms from every
	// engine run under a context carrying it.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a sorted, immutable capture of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsTracer records hierarchical spans (campaign → config →
	// engine → path/port) for Chrome-trace export or text trees.
	ObsTracer = obs.Tracer
)

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTracer returns a span tracer whose clock starts now.
func NewObsTracer() *ObsTracer { return obs.NewTracer() }

// WithObservation attaches a registry and/or tracer (either may be
// nil) to a context; pass the context to the *Ctx analysis variants
// to collect metrics and spans from the run.
func WithObservation(ctx context.Context, reg *ObsRegistry, tr *ObsTracer) context.Context {
	if reg != nil {
		ctx = obs.WithRegistry(ctx, reg)
	}
	if tr != nil {
		ctx = obs.WithTracer(ctx, tr)
	}
	return ctx
}
