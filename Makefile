# Developer entry points. `make check` is the expanded verification
# gate (build, gofmt, vet, tests, race detector); see check.sh.

.PHONY: build test check lint vet-tool fmt bench bench-pr3 bench-pr4 bench-pr5 bench-pr7 bench-pr8 bench-pr9 bench-pr10 serve profile conformance fuzz-smoke

build:
	go build ./...

test:
	go test ./...

check:
	./check.sh

# Lint the bundled sample configuration end to end (smoke test of the
# afdx-lint CLI; expects a clean exit).
lint:
	go run ./cmd/afdx-lint -rules

# Run the determinism-contract checker over the whole tree (the same
# gate check.sh enforces; exit 1 on any unsuppressed DET finding).
vet-tool:
	go run ./cmd/afdx-vet ./...

fmt:
	gofmt -w .

# Time the industrial engine benchmarks sequentially (-parallel 1) and
# parallel (-parallel 0 = all CPUs) and record ns/op plus the parallel
# speedup in BENCH_PR2.json. The bit-reproducibility contract makes the
# two variants compute identical bounds, so the ratio is pure wall-time.
bench:
	go test -run '^$$' -bench 'Industrial(Seq|Par)$$' -benchtime 2x . \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR2.json

# Time the conformance oracle sequentially and parallel (one op = a
# 16-config campaign; the verdicts are identical either way, so the
# ratio is pure wall time) and record ns/op, configs/s and the speedup
# in BENCH_PR3.json.
bench-pr3:
	go test -run '^$$' -bench 'ConformanceOracle(Seq|Par)$$' -benchtime 3x ./internal/conformance \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR3.json

# Time the incremental what-if layer against cold recomputation: a full
# conformance shrink minimisation (40 candidates) and a single what-if
# step, each run from scratch (Cold) and through the dependency-tracked
# caches (Incr). Results are bit-identical by the incremental contract,
# so the recorded speedups are pure re-analysis wall time; pairs use
# the fastest of 3 samples to damp shared-runner noise. Expected:
# ShrinkLoop speedup >= 2x, WhatIfStep speedup >= 2x.
bench-pr5:
	go test -run '^$$' -bench '(ShrinkLoop|WhatIfStep)(Cold|Incr)$$' -benchtime 5x -count 3 ./internal/incremental \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR5.json

# Time the trajectory engine on the industrial configuration through
# the reference (pre-flattening) hot path (Cold) and the flat
# index-based one (Fast), sequentially and parallel. The differential
# suite (internal/trajectory/flat_test.go) proves the two bit-identical,
# so the recorded ratio is pure hot-loop wall time; pairs use the
# fastest of 3 samples. Expected: Seq speedup >= 5x.
bench-pr7:
	go test -run '^$$' -bench 'TrajectoryIndustrial(Seq|Par)(Cold|Fast)$$' -benchtime 2x -count 3 ./internal/trajectory \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR7.json

# Time one interactive what-if question answered cold (full re-analysis
# of the mutated industrial configuration, CLI-style) and through a warm
# afdx-serve session over real HTTP, wire round-trip included. The
# served-conformance tier proves both compute bit-identical bounds, so
# the recorded speedup is the latency the daemon saves an exploration
# loop; pairs use the fastest of 3 samples.
bench-pr8:
	go test -run '^$$' -bench 'ServeWhatIf(Cold|Served)$$' -benchtime 3x -count 3 ./internal/serve \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR8.json

# Time the served what-if loop with the operational observability stack
# fully off versus fully on (JSON request/delta logs, per-request
# tracing into the retention ring, slow-request detection on every
# request, runtime sampler, per-bound provenance). The non-interference
# tier proves the bounds bit-identical either way, so the recorded
# obs_off_on_pairs overhead is the full price of observing a served
# answer. The pair is interleaved across 4 separate runs (rather than
# -count 4 in one) so both variants sample the same machine epochs —
# on a shared runner, sequential halves drift by more than the effect
# being measured; fastest-of damps the rest. Budget: <= 5%.
bench-pr9:
	for i in 1 2 3 4; do \
		go test -run '^$$' -bench 'ServeWhatIfObs(Off|On)$$' -benchtime 5x ./internal/serve || exit 1; \
	done | tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR9.json

# Price the NC tightness/cost ladder: each analysis tier (TFA, WCNC,
# FIFO) run cold and sequentially on the industrial configuration,
# recorded as tier_cold_pairs in BENCH_PR10.json with each tier's cost
# relative to the WCNC default. The conformance oracle enforces the
# cross-tier ordering (cheaper never tighter), so the recorded ratios
# are the pure wall-time side of the trade; pairs use the fastest of 3
# samples. Expected: TFA <= ~1x, FIFO a small multiple of WCNC.
bench-pr10:
	go test -run '^$$' -bench 'NCIndustrialTier(TFA|WCNC|FIFO)Cold$$' -benchtime 2x -count 3 . \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson -o BENCH_PR10.json

# Start the analysis daemon on the default loopback port (see README
# "Serving" for the curl walkthrough; Ctrl-C drains gracefully).
serve:
	go run ./cmd/afdx-serve -addr 127.0.0.1:8723

# Measure the observability layer itself: per-engine instrumented/plain
# wall-time ratio (median over interleaved rounds; budget <= 5%) plus
# the engine counter totals, recorded in BENCH_PR4.json.
bench-pr4:
	go run ./cmd/afdx-benchjson -obs -o BENCH_PR4.json

# Capture CPU and heap profiles of the full industrial analysis under
# profiles/ (gitignored); inspect with `go tool pprof`.
profile:
	mkdir -p profiles
	go run ./cmd/afdx-gen -seed 1 -out profiles/industrial.json
	go run ./cmd/afdx-bounds -config profiles/industrial.json \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-metrics profiles/metrics.json > /dev/null
	@echo "profiles written: profiles/{cpu,mem}.pprof, profiles/metrics.json"

# Cross-engine differential campaign: deterministic family, full
# invariant lattice, shrunk reproductions land in the replay corpus.
conformance:
	go run ./cmd/afdx-conformance -n 500 -seed 1 -corpus internal/conformance/testdata

# Run every native fuzz target for ~10s (the smoke tier; longer runs
# are a manual `go test -fuzz=... -fuzztime=10m` away).
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzReadJSON$$' -fuzztime 10s ./internal/afdx
	go test -run '^$$' -fuzz '^FuzzConformanceConfig$$' -fuzztime 10s ./internal/conformance
