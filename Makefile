# Developer entry points. `make check` is the expanded verification
# gate (build, gofmt, vet, tests, race detector); see check.sh.

.PHONY: build test check lint fmt bench

build:
	go build ./...

test:
	go test ./...

check:
	./check.sh

# Lint the bundled sample configuration end to end (smoke test of the
# afdx-lint CLI; expects a clean exit).
lint:
	go run ./cmd/afdx-lint -rules

fmt:
	gofmt -w .

# Time the industrial engine benchmarks sequentially (-parallel 1) and
# parallel (-parallel 0 = all CPUs) and record ns/op plus the parallel
# speedup in BENCH_PR2.json. The bit-reproducibility contract makes the
# two variants compute identical bounds, so the ratio is pure wall-time.
bench:
	go test -run '^$$' -bench 'Industrial(Seq|Par)$$' -benchtime 2x . \
		| tee /dev/stderr | go run ./cmd/afdx-benchjson > BENCH_PR2.json
