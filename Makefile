# Developer entry points. `make check` is the expanded verification
# gate (build, gofmt, vet, tests, race detector); see check.sh.

.PHONY: build test check lint fmt

build:
	go build ./...

test:
	go test ./...

check:
	./check.sh

# Lint the bundled sample configuration end to end (smoke test of the
# afdx-lint CLI; expects a clean exit).
lint:
	go run ./cmd/afdx-lint -rules

fmt:
	gofmt -w .
