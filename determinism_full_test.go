//go:build !race

package afdx_test

// The full-size trajectory reproducibility check. The race detector
// multiplies the industrial trajectory analysis' seconds-long runtime
// by an order of magnitude, so this file is excluded from -race runs
// (the race build tag is set by the detector); the concurrency itself
// is still exercised under -race by the scaled-down variant in
// determinism_test.go.

import (
	"testing"

	"afdx"
)

// TestIndustrialTrajectoryBitIdenticalParallel checks the path-parallel
// trajectory engine against the sequential one on the full seed-1
// industrial configuration (>5000 paths).
func TestIndustrialTrajectoryBitIdenticalParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial analysis is expensive")
	}
	net, err := afdx.Generate(afdx.DefaultGeneratorSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		t.Fatal(err)
	}
	opts := afdx.DefaultTrajectoryOptions()
	opts.Parallel = 1
	seq, err := afdx.AnalyzeTrajectory(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 0 // all CPUs
	par, err := afdx.AnalyzeTrajectory(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectoryResults(t, "industrial trajectory", seq, par)
}
