package afdx_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding result from scratch (analysis
// only; configuration generation is done once in setup where it is not
// itself the object of the experiment). Run with:
//
//	go test -bench=. -benchmem
//
// The printed rows/series themselves come from cmd/afdx-experiments;
// the benchmarks measure the cost of regenerating each of them and keep
// them wired into `go test -bench` as the prescribed entry point.

import (
	"testing"

	"afdx"
	"afdx/internal/experiments"
)

func figure2Graph(b *testing.B) *afdx.PortGraph {
	b.Helper()
	pg, err := afdx.BuildPortGraph(afdx.Figure2Config(), afdx.Strict)
	if err != nil {
		b.Fatal(err)
	}
	return pg
}

func industrialGraph(b *testing.B) *afdx.PortGraph {
	b.Helper()
	net, err := afdx.Generate(afdx.DefaultGeneratorSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	pg, err := afdx.BuildPortGraph(net, afdx.Strict)
	if err != nil {
		b.Fatal(err)
	}
	return pg
}

// BenchmarkFig3TrajectoryNoGrouping regenerates Figure 3: the trajectory
// bound of v1 on the sample configuration without the grouping
// technique (the impossible simultaneous-arrival scenario).
func BenchmarkFig3TrajectoryNoGrouping(b *testing.B) {
	pg := figure2Graph(b)
	opts := afdx.TrajectoryOptions{Grouping: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := afdx.AnalyzeTrajectory(pg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.PathDelays[experiments.V1Path] != 288 {
			b.Fatalf("figure 3 bound drifted: %g", res.PathDelays[experiments.V1Path])
		}
	}
}

// BenchmarkFig4TrajectoryGrouping regenerates Figure 4: the grouped
// (serialized) trajectory bound of v1.
func BenchmarkFig4TrajectoryGrouping(b *testing.B) {
	pg := figure2Graph(b)
	opts := afdx.DefaultTrajectoryOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := afdx.AnalyzeTrajectory(pg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.PathDelays[experiments.V1Path] != 248 {
			b.Fatalf("figure 4 bound drifted: %g", res.PathDelays[experiments.V1Path])
		}
	}
}

// BenchmarkTableIIndustrial regenerates Table I: the full two-method
// comparison over every path of the industrial configuration.
func BenchmarkTableIIndustrial(b *testing.B) {
	pg := industrialGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := afdx.Compare(pg)
		if err != nil {
			b.Fatal(err)
		}
		s := cmp.Summary()
		if s.NumPaths < 4800 || s.MeanBenefitPct <= 0 {
			b.Fatalf("table I shape drifted: %+v", s)
		}
	}
}

// BenchmarkFig5BenefitByBAG regenerates Figure 5: the per-BAG mean
// benefit aggregation (on top of a Table I comparison).
func BenchmarkFig5BenefitByBAG(b *testing.B) {
	pg := industrialGraph(b)
	cmp, err := afdx.Compare(pg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := cmp.ByBAG()
		if len(rows) < 6 {
			b.Fatalf("figure 5 rows drifted: %d", len(rows))
		}
	}
}

// BenchmarkFig6WCNCWinsBySmax regenerates Figure 6: the per-s_max share
// of paths where Network Calculus wins.
func BenchmarkFig6WCNCWinsBySmax(b *testing.B) {
	pg := industrialGraph(b)
	cmp, err := afdx.Compare(pg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := cmp.BySmax()
		if len(rows) < 10 {
			b.Fatalf("figure 6 rows drifted: %d", len(rows))
		}
	}
}

// BenchmarkFig7SmaxSweep regenerates Figure 7: both bounds for v1 with
// s_max swept over 100..1500 B (15 full analyses of the sample network).
func BenchmarkFig7SmaxSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SweepSmax()
		if err != nil {
			b.Fatal(err)
		}
		if cross := experiments.CrossoverSmax(pts); cross < 100 || cross > 600 {
			b.Fatalf("figure 7 crossover drifted: %d B", cross)
		}
	}
}

// BenchmarkFig8BAGSweep regenerates Figure 8: both bounds for v1 with
// BAG swept over the harmonic values 1..128 ms.
func BenchmarkFig8BAGSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SweepBAG()
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].TrajUs != pts[len(pts)-1].TrajUs {
			b.Fatal("figure 8 flatness drifted")
		}
	}
}

// BenchmarkFig9Surface regenerates Figure 9: the 8x15 (BAG, s_max) plane
// of bound differences.
func BenchmarkFig9Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Surface()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 120 {
			b.Fatalf("figure 9 cells drifted: %d", len(cells))
		}
	}
}

// BenchmarkSimCheck regenerates the soundness experiment: randomized
// simulation against the analytic bounds on the sample configuration.
func BenchmarkSimCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SimCheck(5)
		if err != nil {
			b.Fatal(err)
		}
		if r.Violations != 0 {
			b.Fatal("bound violation in benchmark run")
		}
	}
}

// The industrial engine benchmarks come in Seq (-parallel 1) and Par
// (-parallel 0, all CPUs) variants; the bit-reproducibility contract
// makes both compute the same bounds, so the ratio is the parallel
// speedup quoted in the README and BENCH_PR2.json (cmd/afdx-benchjson
// extracts it from `go test -bench Industrial` output).
func benchmarkNCIndustrial(b *testing.B, workers int) {
	pg := industrialGraph(b)
	opts := afdx.DefaultNCOptions()
	opts.Parallel = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := afdx.AnalyzeNC(pg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkTrajectoryIndustrial(b *testing.B, workers int) {
	pg := industrialGraph(b)
	opts := afdx.DefaultTrajectoryOptions()
	opts.Parallel = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := afdx.AnalyzeTrajectory(pg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkCalculusIndustrialSeq(b *testing.B) { benchmarkNCIndustrial(b, 1) }
func BenchmarkNetworkCalculusIndustrialPar(b *testing.B) { benchmarkNCIndustrial(b, 0) }

// The per-tier Cold benchmarks price the NC tightness/cost ladder:
// each analysis tier run from scratch, sequentially, on the industrial
// configuration (cmd/afdx-benchjson pairs them against the WCNC tier
// into BENCH_PR10.json's tier_cold_pairs). The conformance oracle pins
// the cross-tier ordering, so the recorded ratios are pure wall time.
func benchmarkNCIndustrialTier(b *testing.B, tier afdx.NCAnalysis) {
	pg := industrialGraph(b)
	opts := afdx.DefaultNCOptions()
	opts.Parallel = 1
	opts.Analysis = tier
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := afdx.AnalyzeNC(pg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNCIndustrialTierTFACold(b *testing.B) { benchmarkNCIndustrialTier(b, afdx.NCAnalysisTFA) }
func BenchmarkNCIndustrialTierWCNCCold(b *testing.B) {
	benchmarkNCIndustrialTier(b, afdx.NCAnalysisWCNC)
}
func BenchmarkNCIndustrialTierFIFOCold(b *testing.B) {
	benchmarkNCIndustrialTier(b, afdx.NCAnalysisFIFO)
}
func BenchmarkTrajectoryIndustrialSeq(b *testing.B) { benchmarkTrajectoryIndustrial(b, 1) }
func BenchmarkTrajectoryIndustrialPar(b *testing.B) { benchmarkTrajectoryIndustrial(b, 0) }

// BenchmarkSimulatorFigure2 times the discrete-event simulator itself.
func BenchmarkSimulatorFigure2(b *testing.B) {
	pg := figure2Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := afdx.DefaultSimConfig(int64(i))
		cfg.DurationUs = 128_000
		res, err := afdx.Simulate(pg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FramesEmitted == 0 {
			b.Fatal("no frames emitted")
		}
	}
}

// BenchmarkAblationMatrix regenerates the design-knob ablation table
// (every NC and trajectory variant on the sample configuration).
func BenchmarkAblationMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("ablation rows drifted: %d", len(rows))
		}
	}
}

// BenchmarkPessimismSearch regenerates the achievable-worst-case table
// (grid + refinement offset search against both bounds).
func BenchmarkPessimismSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Pessimism()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NCRatio < 1-1e-9 {
				b.Fatalf("pessimism experiment found an NC violation: %+v", r)
			}
		}
	}
}

// BenchmarkScalingStudy regenerates the scaling experiment's smallest
// point (the full study is dominated by BenchmarkTableIIndustrial).
func BenchmarkScalingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scaling(experiments.Config{Seed: 1}, []int{100})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Summary.NumPaths == 0 {
			b.Fatal("scaling study produced no paths")
		}
	}
}
